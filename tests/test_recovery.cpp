// Chaos suite for node-failure injection and the failover + source-replay
// recovery protocol (core/recovery.hpp).
//
// The gold standard throughout: no matter when a join node dies -- build,
// reshuffle, or probe; once or twice; with or without spare pool nodes --
// the run must terminate and produce exactly reference_join(config).
// SimRuntime cases double as determinism checks: the same FaultPlan and
// seed must reproduce the identical virtual-time line twice.
#include <gtest/gtest.h>

#include <string>

#include "core/driver.hpp"
#include "core/failure_detector.hpp"
#include "core/pipeline.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

// Small but not trivial: several chunks per node and a multi-slice build so
// kills land mid-phase, with a memory budget tight enough (~4000 of 30000
// build tuples per node) that the expanding algorithms actually expand and
// replicas/reshuffles exist to be broken.  SmallDomain keys make the join
// output dense: a recovery that loses or duplicates tuples shows up in the
// match count and checksum, not just in storage totals.
EhjaConfig chaos_config(Algorithm algorithm) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = 3;
  config.join_pool_nodes = 8;
  config.data_sources = 2;
  config.build_rel.tuple_count = 30'000;
  config.probe_rel.tuple_count = 30'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(2048);
  config.probe_rel.dist = DistributionSpec::SmallDomain(2048);
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  config.node_hash_memory_bytes =
      4000 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 64;
  // This workload's rebuild bursts are milliseconds, so fast heartbeats
  // keep virtual detection latency proportionate (the production defaults
  // are sized for the full paper-scale workload).
  config.ft.heartbeat_interval_sec = 0.025;
  config.ft.heartbeat_timeout_sec = 0.1;
  return config;
}

KillSpec kill_after_chunks(std::uint32_t pool_index, std::uint64_t chunks) {
  KillSpec kill;
  kill.pool_index = pool_index;
  kill.after_chunks = chunks;
  return kill;
}

KillSpec kill_at(std::uint32_t pool_index, double at_time) {
  KillSpec kill;
  kill.pool_index = pool_index;
  kill.at_time = at_time;
  return kill;
}

std::string algo_test_name(const ::testing::TestParamInfo<Algorithm>& info) {
  std::string n = algorithm_name(info.param);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

void expect_recovered(const RunResult& run, const EhjaConfig& config,
                      std::uint32_t kills) {
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, kills);
  EXPECT_EQ(run.metrics.failures_detected, kills);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_GT(run.metrics.detection_latency_total, 0.0);
  EXPECT_GT(run.metrics.recovery_time_total, 0.0);
  EXPECT_GT(run.metrics.replayed_build_tuples, 0u);
}

// ---------------------------------------------------------------------------
// Kill during the build, at a deterministic progress point, every algorithm.

class BuildKillSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BuildKillSuite, DiesMidBuildAndStillMatchesOracle) {
  auto config = chaos_config(GetParam());
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  const RunResult run = run_ehja(config);
  expect_recovered(run, config, 1);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BuildKillSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

// ---------------------------------------------------------------------------
// Kill during the probe.  The kill time comes from a fault-free baseline run
// with the detector armed (force_enabled), so the timeline matches the
// faulty run's exactly up to the injected death.

class ProbeKillSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ProbeKillSuite, DiesMidProbeAndStillMatchesOracle) {
  auto config = chaos_config(GetParam());
  config.ft.force_enabled = true;
  const RunResult baseline = run_ehja(config);
  ASSERT_GT(baseline.metrics.t_probe_end, baseline.metrics.t_reshuffle_end);
  const double mid = 0.5 * (baseline.metrics.t_reshuffle_end +
                            baseline.metrics.t_probe_end);
  config.faults.kills.push_back(kill_at(0, mid));
  const RunResult run = run_ehja(config);
  expect_recovered(run, config, 1);
  // A probe-side death rebuilds the table from R *and* re-sends the lost
  // span of S.
  EXPECT_GT(run.metrics.replayed_probe_tuples, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ProbeKillSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

// ---------------------------------------------------------------------------
// Kill inside hybrid's reshuffle window: the in-flight round is aborted,
// membership shrinks, and the scheduler replans against the survivors.

TEST(RecoveryTest, HybridKilledDuringReshuffle) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.force_enabled = true;
  const RunResult baseline = run_ehja(config);
  ASSERT_GT(baseline.metrics.t_reshuffle_end, baseline.metrics.t_build_end)
      << "baseline did not reshuffle; tighten the memory budget";
  const double mid = 0.5 * (baseline.metrics.t_build_end +
                            baseline.metrics.t_reshuffle_end);
  config.faults.kills.push_back(kill_at(1, mid));
  const RunResult run = run_ehja(config);
  expect_recovered(run, config, 1);
}

// ---------------------------------------------------------------------------
// Two deaths, the second while the first recovery is still in flight (the
// fold path: hulls accumulate, surgery recomputes, the epoch bumps again).

TEST(RecoveryTest, DoubleFailureFoldsIntoOneRecoveryWave) {
  auto config = chaos_config(Algorithm::kReplicate);
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  config.faults.kills.push_back(kill_after_chunks(2, 14));
  const RunResult run = run_ehja(config);
  expect_recovered(run, config, 2);
}

TEST(RecoveryTest, BuildAndProbeDeathsInOneRun) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.force_enabled = true;
  const RunResult baseline = run_ehja(config);
  const double probe_mid = 0.5 * (baseline.metrics.t_reshuffle_end +
                                  baseline.metrics.t_probe_end);
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  config.faults.kills.push_back(kill_at(2, probe_mid));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 2u);
  EXPECT_GE(run.metrics.recoveries, 2u);
}

// ---------------------------------------------------------------------------
// No spare pool nodes: the dead node's range must merge into a surviving
// neighbour, which blows its budget and degrades to spilling -- slower, but
// never wrong.

TEST(RecoveryTest, ExhaustedPoolMergesIntoNeighbourAndSpills) {
  auto config = chaos_config(Algorithm::kReplicate);
  config.join_pool_nodes = config.initial_join_nodes;  // no spares
  config.node_hash_memory_bytes =
      12'000 * tuple_footprint(config.build_rel.schema);
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_GE(run.metrics.recoveries, 1u);
  std::uint64_t spilled = 0;
  for (const auto& node : run.metrics.nodes) {
    spilled += node.spilled_build_tuples;
  }
  EXPECT_GT(spilled, 0u);
}

// Regression (found by RecoveryFuzz iteration 1): a replicate-mode initial
// node dying on its 24th chunk, right at the start of the probe.
TEST(RecoveryTest, EarlyProbeDeathReplicate) {
  auto config = chaos_config(Algorithm::kReplicate);
  config.faults.kills.push_back(kill_after_chunks(2, 24));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

// ---------------------------------------------------------------------------
// Determinism: the same FaultPlan and seed reproduce the identical
// virtual-time line, bit for bit.

TEST(RecoveryTest, FaultTimelineIsDeterministic) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.faults.kills.push_back(kill_after_chunks(1, 12));
  const RunResult a = run_ehja(config);
  const RunResult b = run_ehja(config);
  EXPECT_EQ(a.metrics.t_build_end, b.metrics.t_build_end);
  EXPECT_EQ(a.metrics.t_reshuffle_end, b.metrics.t_reshuffle_end);
  EXPECT_EQ(a.metrics.t_probe_end, b.metrics.t_probe_end);
  EXPECT_EQ(a.metrics.t_complete, b.metrics.t_complete);
  EXPECT_EQ(a.metrics.detection_latency_total,
            b.metrics.detection_latency_total);
  EXPECT_EQ(a.metrics.recovery_time_total, b.metrics.recovery_time_total);
  EXPECT_EQ(a.metrics.replayed_build_tuples, b.metrics.replayed_build_tuples);
  EXPECT_EQ(a.metrics.replayed_probe_tuples, b.metrics.replayed_probe_tuples);
  EXPECT_EQ(a.metrics.extra_build_chunks, b.metrics.extra_build_chunks);
  EXPECT_EQ(a.join(), b.join());
}

// Fault-free runs with the machinery merely *armed* still match the oracle
// (the heartbeat traffic must not perturb protocol correctness).

TEST(RecoveryTest, ArmedButFaultFreeStillMatchesOracle) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.force_enabled = true;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_detected, 0u);
  EXPECT_EQ(run.metrics.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Network faults: per-message jitter and drop-with-redelivery break the
// FIFO assumptions the fault-free protocol leans on; the epoch fences must
// absorb that, with and without a concurrent node death.

TEST(RecoveryTest, JitterAndRedeliveryAloneStayCorrect) {
  auto config = chaos_config(Algorithm::kReplicate);
  config.ft.force_enabled = true;
  config.link.fault_jitter_sec = 200e-6;
  config.link.fault_drop_prob = 0.05;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(RecoveryTest, NodeDeathUnderJitterAndRedelivery) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.link.fault_jitter_sec = 100e-6;
  config.link.fault_drop_prob = 0.02;
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_GE(run.metrics.recoveries, 1u);
}

// ---------------------------------------------------------------------------
// Seeded fuzz: random algorithm x victim x progress point.  Every draw must
// match the oracle; the seed makes a failure reproducible from the log.

TEST(RecoveryFuzz, RandomSingleKillsMatchOracle) {
  constexpr Algorithm kAll[] = {Algorithm::kSplit, Algorithm::kReplicate,
                                Algorithm::kHybrid, Algorithm::kOutOfCore,
                                Algorithm::kAdaptive};
  SplitMix64 rng(20040607, /*stream=*/0xfa117);
  for (int i = 0; i < 10; ++i) {
    auto config = chaos_config(kAll[i % 5]);
    const auto victim = static_cast<std::uint32_t>(rng.next_below(3));
    // Up to ~90 chunks: the victim sees ~40 (build + probe), so high draws
    // also cover late-probe deaths and kills that never fire at all.
    const auto chunks = 1 + rng.next_below(90);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " +
                 algorithm_name(config.algorithm) + ", kill pool node " +
                 std::to_string(victim) + " after " +
                 std::to_string(chunks) + " chunks");
    config.faults.kills.push_back(kill_after_chunks(victim, chunks));
    const RunResult run = run_ehja(config);
    EXPECT_EQ(run.join(), reference_join(config));
    // Every kill that fired must have been detected.
    EXPECT_EQ(run.metrics.failures_detected, run.metrics.failures_injected);
  }
}

// ---------------------------------------------------------------------------
// ThreadRuntime: real threads, wall-clock heartbeats.  Progress-triggered
// kills keep the death deterministic; the ft timeouts are generous so TSan's
// scheduling overhead cannot fake a second failure.

class ThreadChaosSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ThreadChaosSuite, DiesMidBuildOnRealThreads) {
  auto config = chaos_config(GetParam());
  config.build_rel.tuple_count = 12'000;
  config.probe_rel.tuple_count = 12'000;
  config.node_hash_memory_bytes =
      2000 * tuple_footprint(config.build_rel.schema);
  config.ft.heartbeat_interval_sec = 0.05;
  config.ft.heartbeat_timeout_sec = 1.0;
  config.faults.kills.push_back(kill_after_chunks(1, 6));
  const RunResult run = run_ehja(config, RuntimeKind::kThread);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_GE(run.metrics.failures_detected, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ThreadChaosSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid),
                         algo_test_name);

// ---------------------------------------------------------------------------
// Data-source kills: the dead source's deterministic stream slice is
// reassigned to a pool recruit with the same source index, which replays it
// from position zero under the recovery fence.

KillSpec kill_role_after(KillRole role, std::uint32_t index,
                         std::uint64_t chunks) {
  KillSpec kill;
  kill.role = role;
  kill.pool_index = index;
  kill.after_chunks = chunks;
  return kill;
}

KillSpec kill_role_at(KillRole role, std::uint32_t index, double at_time) {
  KillSpec kill;
  kill.role = role;
  kill.pool_index = index;
  kill.at_time = at_time;
  return kill;
}

class SourceBuildKillSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SourceBuildKillSuite, SourceDiesMidBuildAndStillMatchesOracle) {
  auto config = chaos_config(GetParam());
  // Each source owns 15000 of the 30000 build tuples = 30 chunks; dying
  // before its 10th chunk leaves two thirds of its slice unsent.
  config.faults.kills.push_back(
      kill_role_after(KillRole::kSource, 1, 10));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_EQ(run.metrics.failures_detected, 1u);
  EXPECT_EQ(run.metrics.source_failures, 1u);
  EXPECT_EQ(run.metrics.join_failures, 0u);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_GT(run.metrics.replayed_build_tuples, 0u);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SourceBuildKillSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

class SourceProbeKillSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SourceProbeKillSuite, SourceDiesMidProbeAndStillMatchesOracle) {
  auto config = chaos_config(GetParam());
  // Chunk 40 is the source's 10th probe chunk (30 build chunks precede it),
  // so the kill lands mid-probe: the replacement replays the whole build
  // slice, then the probe slice, under the settle drain.
  config.faults.kills.push_back(
      kill_role_after(KillRole::kSource, 0, 40));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_EQ(run.metrics.source_failures, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_GT(run.metrics.replayed_probe_tuples, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SourceProbeKillSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

TEST(RecoveryTest, SourceKilledDuringReshuffle) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.force_enabled = true;
  const RunResult baseline = run_ehja(config);
  ASSERT_GT(baseline.metrics.t_reshuffle_end, baseline.metrics.t_build_end);
  const double mid = 0.5 * (baseline.metrics.t_build_end +
                            baseline.metrics.t_reshuffle_end);
  // Sources are idle between SourceDone and StartProbe, so this death is
  // detected purely by heartbeat silence while the joins reshuffle.
  config.faults.kills.push_back(kill_role_at(KillRole::kSource, 0, mid));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.source_failures, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler kills: the standby promotes itself, reconciles against the
// workers' handoff acks, wipes in-flight coverage, and finishes the run.

class SchedulerKillSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SchedulerKillSuite, SchedulerDiesMidBuildAndStillMatchesOracle) {
  auto config = chaos_config(GetParam());
  config.ft.standby_scheduler = true;
  // The scheduler's progress trigger counts protocol messages; its 25th
  // arrives early in the build (first heartbeat rounds + expansion traffic).
  config.faults.kills.push_back(
      kill_role_after(KillRole::kScheduler, 0, 25));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_EQ(run.metrics.scheduler_failovers, 1u);
  EXPECT_GT(run.metrics.detection_latency_total, 0.0);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SchedulerKillSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

TEST(RecoveryTest, SchedulerKilledDuringReshuffle) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.standby_scheduler = true;
  const RunResult baseline = run_ehja(config);
  ASSERT_GT(baseline.metrics.t_reshuffle_end, baseline.metrics.t_build_end);
  const double mid = 0.5 * (baseline.metrics.t_build_end +
                            baseline.metrics.t_reshuffle_end);
  config.faults.kills.push_back(kill_role_at(KillRole::kScheduler, 0, mid));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.scheduler_failovers, 1u);
}

TEST(RecoveryTest, SchedulerKilledDuringProbe) {
  auto config = chaos_config(Algorithm::kReplicate);
  config.ft.standby_scheduler = true;
  const RunResult baseline = run_ehja(config);
  ASSERT_GT(baseline.metrics.t_probe_end, baseline.metrics.t_reshuffle_end);
  const double mid = 0.5 * (baseline.metrics.t_reshuffle_end +
                            baseline.metrics.t_probe_end);
  config.faults.kills.push_back(kill_role_at(KillRole::kScheduler, 0, mid));
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.scheduler_failovers, 1u);
  EXPECT_EQ(run.metrics.probe_tuples_total, config.probe_rel.tuple_count);
}

// ---------------------------------------------------------------------------
// Fuzzed kill point over all three roles: any single process, killed at a
// random progress point, must still produce the oracle's exact result.

TEST(RecoveryFuzz, AnyRoleRandomKillPointMatchesOracle) {
  constexpr Algorithm kAll[] = {Algorithm::kSplit, Algorithm::kReplicate,
                                Algorithm::kHybrid, Algorithm::kOutOfCore,
                                Algorithm::kAdaptive};
  constexpr KillRole kRoles[] = {KillRole::kJoin, KillRole::kSource,
                                 KillRole::kScheduler};
  SplitMix64 rng(20040607, /*stream=*/0x50b07);
  for (int i = 0; i < 12; ++i) {
    auto config = chaos_config(kAll[i % 5]);
    config.ft.standby_scheduler = true;  // scheduler kills need the standby
    const KillRole role = kRoles[i % 3];
    std::uint32_t index = 0;
    std::uint64_t chunks = 0;
    switch (role) {
      case KillRole::kJoin:
        index = static_cast<std::uint32_t>(rng.next_below(3));
        chunks = 1 + rng.next_below(90);
        break;
      case KillRole::kSource:
        index = static_cast<std::uint32_t>(rng.next_below(2));
        chunks = 1 + rng.next_below(60);
        break;
      case KillRole::kScheduler:
        // The scheduler handles hundreds of messages per run; high draws
        // also cover kills that land in late phases or never fire.
        chunks = 1 + rng.next_below(400);
        break;
    }
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " +
                 algorithm_name(config.algorithm) + ", kill " +
                 kill_role_name(role) + "[" + std::to_string(index) +
                 "] at progress point " + std::to_string(chunks));
    config.faults.kills.push_back(kill_role_after(role, index, chunks));
    const RunResult run = run_ehja(config);
    EXPECT_EQ(run.join(), reference_join(config));
    // A busy node can starve a live process of its heartbeat slot, so the
    // detector may fire extra, *false-positive* detections on top of the
    // injected death; those are tallied separately and must reconcile.
    EXPECT_EQ(run.metrics.failures_detected - run.metrics.false_positive_deaths,
              run.metrics.failures_injected);
  }
}

// ---------------------------------------------------------------------------
// Mid-pipeline kills: a join worker dies inside one stage of a 3-stage
// materialized pipeline.  The recovered stage must still hand off exactly
// the right rows, so the whole chain -- not just the wounded stage -- is
// checked against the serial_multi_join oracle.  The build-side kill uses
// the after_chunks trigger; the probe-side kill uses at_time (derived from
// a fault-free baseline), covering both trigger mechanisms.

PipelinePlan chaos_pipeline_plan() {
  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 12'000, Schema{100},
                                  DistributionSpec::SmallDomain(2048),
                                  nullptr};
  plan.intermediate_tuple_bytes = 200;
  plan.join_pool_nodes = 8;
  plan.data_sources = 2;
  plan.chunk_tuples = 500;
  plan.node_hash_memory_bytes = 1500 * tuple_footprint(Schema{200});
  plan.ft.heartbeat_interval_sec = 0.025;
  plan.ft.heartbeat_timeout_sec = 0.1;
  for (std::size_t k = 0; k < 3; ++k) {
    PipelineStage stage;
    stage.probe = RelationSpec{RelTag::kS, 10'000, Schema{100},
                               DistributionSpec::SmallDomain(2048), nullptr};
    stage.algorithm = Algorithm::kHybrid;
    stage.initial_join_nodes = 3;
    stage.link_dist = DistributionSpec::SmallDomain(2048);
    plan.stages.push_back(stage);
  }
  return plan;
}

void expect_pipeline_recovered(const PipelinePlan& plan,
                               const PipelineResult& pipeline,
                               std::size_t wounded_stage) {
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  const RunMetrics& m = pipeline.stages[wounded_stage].run.metrics;
  EXPECT_EQ(m.failures_injected, 1u);
  EXPECT_EQ(m.failures_detected, 1u);
  EXPECT_GE(m.recoveries, 1u);
  // The hand-off chain must survive the recovery intact.
  for (std::size_t k = 1; k < pipeline.stages.size(); ++k) {
    EXPECT_EQ(pipeline.stages[k].build_input_checksum,
              pipeline.stages[k - 1].output_checksum)
        << "stage " << k;
  }
}

TEST(PipelineChaosTest, JoinWorkerDiesMidStage2Build) {
  auto plan = chaos_pipeline_plan();
  // Stage index 1 = the pipeline's second stage; chunk 6 of a multi-slice
  // build lands well inside its build phase.
  plan.stages[1].faults.kills.push_back(kill_after_chunks(1, 6));
  const PipelineResult pipeline = run_pipeline(plan);
  expect_pipeline_recovered(plan, pipeline, 1);
  EXPECT_GT(pipeline.stages[1].run.metrics.replayed_build_tuples, 0u);
}

TEST(PipelineChaosTest, JoinWorkerDiesMidFinalStageProbe) {
  auto plan = chaos_pipeline_plan();
  // Baseline with the detector armed so the faulty run's timeline matches
  // exactly up to the injected death.
  plan.ft.force_enabled = true;
  const PipelineResult baseline = run_pipeline(plan);
  const RunMetrics& base = baseline.stages[2].run.metrics;
  ASSERT_GT(base.t_probe_end, base.t_reshuffle_end);
  const double mid = 0.5 * (base.t_reshuffle_end + base.t_probe_end);
  plan.stages[2].faults.kills.push_back(kill_at(0, mid));
  const PipelineResult pipeline = run_pipeline(plan);
  expect_pipeline_recovered(plan, pipeline, 2);
  EXPECT_GT(pipeline.stages[2].run.metrics.replayed_probe_tuples, 0u);
}

TEST(PipelineChaosTest, KillsInTwoDifferentStagesOfOneRun) {
  auto plan = chaos_pipeline_plan();
  plan.stages[0].faults.kills.push_back(kill_after_chunks(2, 8));
  plan.stages[2].faults.kills.push_back(kill_after_chunks(0, 6));
  const PipelineResult pipeline = run_pipeline(plan);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  EXPECT_EQ(pipeline.stages[0].run.metrics.failures_injected, 1u);
  EXPECT_EQ(pipeline.stages[2].run.metrics.failures_injected, 1u);
  // The unwounded middle stage must not have seen a failure.
  EXPECT_EQ(pipeline.stages[1].run.metrics.failures_injected, 0u);
}

TEST(PipelineChaosTest, MidStage2KillOnRealThreads) {
  auto plan = chaos_pipeline_plan();
  plan.first_build.tuple_count = 6'000;
  for (auto& stage : plan.stages) stage.probe.tuple_count = 8'000;
  plan.ft.heartbeat_interval_sec = 0.05;
  plan.ft.heartbeat_timeout_sec = 1.0;
  plan.stages[1].faults.kills.push_back(kill_after_chunks(1, 4));
  const PipelineResult pipeline = run_pipeline(plan, RuntimeKind::kThread);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  EXPECT_EQ(pipeline.stages[1].run.metrics.failures_injected, 1u);
  EXPECT_GE(pipeline.stages[1].run.metrics.recoveries, 1u);
}

// Determinism with a mid-pipeline fault: the same plan and FaultPlan
// reproduce the identical chain, including the wounded stage's timeline.
TEST(PipelineChaosTest, FaultyPipelineIsDeterministic) {
  auto plan = chaos_pipeline_plan();
  plan.stages[1].faults.kills.push_back(kill_after_chunks(1, 6));
  const PipelineResult a = run_pipeline(plan);
  const PipelineResult b = run_pipeline(plan);
  EXPECT_EQ(a.final, b.final);
  EXPECT_EQ(a.final_rows, b.final_rows);
  EXPECT_EQ(a.stages[1].run.metrics.t_complete,
            b.stages[1].run.metrics.t_complete);
  EXPECT_EQ(a.stages[1].run.metrics.replayed_build_tuples,
            b.stages[1].run.metrics.replayed_build_tuples);
}

// ---------------------------------------------------------------------------
// FailureDetector unit tests: the clock book in isolation.

TEST(FailureDetectorTest, SilentActorDeclaredDeadAfterTimeout) {
  FailureDetector detector(/*timeout_sec=*/0.1);
  detector.track(7, 0.0);
  detector.track(9, 0.0);

  auto result = detector.tick(0.05);  // inside the timeout: ping both
  EXPECT_TRUE(result.dead.empty());
  EXPECT_EQ(result.ping, (std::vector<ActorId>{7, 9}));

  detector.heard_from(9, 0.08);
  result = detector.tick(0.15);  // 7 silent for 0.15 > 0.1; 9 for 0.07
  ASSERT_EQ(result.dead.size(), 1u);
  EXPECT_EQ(result.dead[0].actor, 7);
  EXPECT_DOUBLE_EQ(result.dead[0].silence_sec, 0.15);
  EXPECT_EQ(result.ping, (std::vector<ActorId>{9}));
  EXPECT_FALSE(detector.tracking(7));  // declared dead => untracked
  EXPECT_TRUE(detector.tracking(9));
}

TEST(FailureDetectorTest, LatePongCannotResurrectTheDead) {
  FailureDetector detector(0.1);
  detector.track(7, 0.0);
  auto result = detector.tick(0.2);
  ASSERT_EQ(result.dead.size(), 1u);
  detector.heard_from(7, 0.21);  // the zombie pong
  result = detector.tick(0.25);
  EXPECT_TRUE(result.dead.empty());
  EXPECT_TRUE(result.ping.empty());
  EXPECT_FALSE(detector.tracking(7));
}

TEST(FailureDetectorTest, UntrackStopsPinging) {
  FailureDetector detector(0.1);
  detector.track(3, 0.0);
  detector.track(4, 0.0);
  detector.untrack(3);
  const auto result = detector.tick(0.05);
  EXPECT_EQ(result.ping, (std::vector<ActorId>{4}));
  EXPECT_EQ(detector.tracked_count(), 1u);
}

TEST(FailureDetectorTest, ExactTimeoutBoundaryIsStillAlive) {
  FailureDetector detector(0.1);
  detector.track(5, 0.0);
  const auto result = detector.tick(0.1);  // silence == timeout: not yet
  EXPECT_TRUE(result.dead.empty());
  EXPECT_EQ(result.ping, (std::vector<ActorId>{5}));
}

// ---------------------------------------------------------------------------
// Phi-accrual detector: suspicion accrues from the pong inter-arrival
// history, so detection is fast after a regular history and the fixed
// timeout survives only as a hard cap and warm-up fallback.

/// Feed `n` pong samples with a constant 0.1 s gap; returns the last time.
double feed_regular_pongs(FailureDetector& detector, ActorId actor, int n) {
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += 0.1;
    detector.heard_from(actor, t, /*sample=*/true);
  }
  return t;
}

TEST(PhiDetectorTest, RegularHistoryDetectsSilenceFarBelowHardTimeout) {
  FailureDetector detector(DetectorKind::kPhiAccrual, /*timeout_sec=*/5.0,
                           /*phi_threshold=*/4.0);
  detector.track(7, 0.0);
  const double t = feed_regular_pongs(detector, 7, 20);
  // Just past the usual gap: barely suspicious, still alive.
  EXPECT_LT(detector.phi(7, t + 0.11), 4.0);
  EXPECT_TRUE(detector.tick(t + 0.11).dead.empty());
  // Three gaps of silence after a metronomic history: certainty, declared
  // dead after 0.3 s where the fixed rule would have waited 5 s.
  const auto result = detector.tick(t + 0.3);
  ASSERT_EQ(result.dead.size(), 1u);
  EXPECT_EQ(result.dead[0].actor, 7);
  EXPECT_GT(result.dead[0].phi, 4.0);
  EXPECT_DOUBLE_EQ(result.dead[0].silence_sec, 0.3);
}

TEST(PhiDetectorTest, PhiGrowsMonotonicallyWithSilence) {
  FailureDetector detector(DetectorKind::kPhiAccrual, 5.0, 8.0);
  detector.track(7, 0.0);
  const double t = feed_regular_pongs(detector, 7, 20);
  double last = -1.0;
  for (double dt = 0.05; dt <= 0.40; dt += 0.05) {
    const double phi = detector.phi(7, t + dt);
    EXPECT_GE(phi, last) << "phi must not shrink as silence grows";
    last = phi;
  }
  EXPECT_GT(last, 8.0);
}

TEST(PhiDetectorTest, WarmupFallsBackToHardTimeout) {
  FailureDetector detector(DetectorKind::kPhiAccrual, /*timeout_sec=*/0.5,
                           /*phi_threshold=*/1.0);
  detector.track(7, 0.0);
  // Only 3 samples -- far below the minimum window; phi stays disarmed.
  detector.heard_from(7, 0.1, true);
  detector.heard_from(7, 0.2, true);
  detector.heard_from(7, 0.3, true);
  EXPECT_EQ(detector.phi(7, 0.69), 0.0);
  EXPECT_TRUE(detector.tick(0.75).dead.empty());  // silence 0.45 < cap
  const auto result = detector.tick(0.81);        // silence 0.51 > cap
  ASSERT_EQ(result.dead.size(), 1u);
  EXPECT_EQ(result.dead[0].actor, 7);
}

TEST(PhiDetectorTest, RecoveryGuardDoublesTheThreshold) {
  FailureDetector detector(DetectorKind::kPhiAccrual, /*timeout_sec=*/5.0,
                           /*phi_threshold=*/4.0);
  detector.track(7, 0.0);
  const double t = feed_regular_pongs(detector, 7, 20);
  // At this silence phi sits between the plain threshold (4) and the
  // recovery-doubled one (8): a busy rebuilder survives exactly the round
  // that would have killed it outside recovery.
  const double silence = 0.145;
  const double phi = detector.phi(7, t + silence);
  ASSERT_GT(phi, 4.0);
  ASSERT_LT(phi, 8.0);
  EXPECT_TRUE(detector.tick(t + silence, /*recovery_active=*/true)
                  .dead.empty());
  const auto result = detector.tick(t + silence, /*recovery_active=*/false);
  ASSERT_EQ(result.dead.size(), 1u);
  EXPECT_GT(result.dead[0].phi, 4.0);
}

TEST(PhiDetectorTest, HardCapOverridesErraticHistory) {
  FailureDetector detector(DetectorKind::kPhiAccrual, /*timeout_sec=*/0.4,
                           /*phi_threshold=*/50.0);  // phi alone never fires
  detector.track(7, 0.0);
  feed_regular_pongs(detector, 7, 20);
  const double t = 2.0;
  const auto result = detector.tick(t + 0.41);  // way past the cap
  ASSERT_EQ(result.dead.size(), 1u);
  EXPECT_EQ(result.dead[0].actor, 7);
}

// End-to-end: the phi detector drives a full chaos run and the recovery
// still matches the oracle, with detection faster than the timeout rule.
TEST(PhiDetectorTest, PhiDrivenRecoveryMatchesOracle) {
  auto config = chaos_config(Algorithm::kHybrid);
  config.ft.detector = DetectorKind::kPhiAccrual;
  config.ft.phi_threshold = 6.0;
  config.faults.kills.push_back(kill_after_chunks(1, 10));
  const RunResult run = run_ehja(config);
  expect_recovered(run, config, 1);
  // Phi can only accelerate detection below the hard cap; ticks are
  // discrete, so allow a ping interval of quantization past it.
  EXPECT_LE(run.metrics.detection_latency_max,
            config.ft.heartbeat_timeout_sec +
                config.ft.heartbeat_interval_sec);
}

}  // namespace
}  // namespace ehja
