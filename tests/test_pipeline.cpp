// Tests for materialized multi-way join pipelines: plan validation (every
// rejection message), the stage hand-off transform, budget accounting, and
// oracle equality on the sim runtime.  test_multiway.cpp carries the
// randomized cross-runtime fuzz; test_recovery.cpp the mid-pipeline kills.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

PipelinePlan small_plan(std::size_t stages) {
  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 8'000, Schema{100},
                                  DistributionSpec::SmallDomain(4096), nullptr};
  plan.intermediate_tuple_bytes = 200;
  plan.join_pool_nodes = 16;
  plan.data_sources = 2;
  plan.node_hash_memory_bytes = 1500 * tuple_footprint(Schema{200});
  for (std::size_t k = 0; k < stages; ++k) {
    PipelineStage stage;
    stage.probe = RelationSpec{RelTag::kS, 10'000, Schema{100},
                               DistributionSpec::SmallDomain(4096), nullptr};
    stage.algorithm = Algorithm::kHybrid;
    stage.initial_join_nodes = 2;
    stage.link_dist = DistributionSpec::SmallDomain(4096);
    plan.stages.push_back(stage);
  }
  return plan;
}

// --- validation: every rejection path, by message ---

TEST(PipelineValidationTest, AcceptsSoundPlan) {
  EXPECT_EQ(small_plan(3).validate_or_error(), std::nullopt);
}

TEST(PipelineValidationTest, RejectsEmptyStageList) {
  auto plan = small_plan(2);
  plan.stages.clear();
  const auto err = plan.validate_or_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "pipeline plan has no stages");
}

TEST(PipelineValidationTest, RejectsZeroInitialJoinNodes) {
  auto plan = small_plan(3);
  plan.stages[1].initial_join_nodes = 0;
  const auto err = plan.validate_or_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "stage 1: initial_join_nodes must be >= 1");
}

TEST(PipelineValidationTest, RejectsStageBudgetExceedingGlobalPool) {
  auto plan = small_plan(2);
  plan.stages[1].initial_join_nodes = plan.join_pool_nodes + 1;
  const auto err = plan.validate_or_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "stage 1: stage budget exceeds the shared join pool");
}

TEST(PipelineValidationTest, ForwardsPerStageConfigRejections) {
  auto plan = small_plan(2);
  plan.stages[0].probe.schema = Schema{8};  // below the id+key header
  const auto err = plan.validate_or_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "stage 0: tuples must be >= 16 bytes (id + key header)");
}

TEST(PipelineValidationTest, RejectsBadKillSpecInStageFaults) {
  auto plan = small_plan(2);
  KillSpec kill;
  kill.role = KillRole::kJoin;
  kill.pool_index = plan.join_pool_nodes;  // outside the pool
  kill.after_chunks = 3;
  plan.stages[1].faults.kills.push_back(kill);
  const auto err = plan.validate_or_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "stage 1: FaultPlan kill targets a node outside the join pool");
}

TEST(PipelineDeathTest, RunAbortsOnInvalidPlan) {
  PipelinePlan plan;  // no stages
  plan.first_build = RelationSpec{RelTag::kR, 10, Schema{100},
                                  DistributionSpec::Uniform(), nullptr};
  EXPECT_DEATH(run_pipeline(plan), "stages");
}

// --- the hand-off transform ---

TEST(LinkStageOutputTest, CanonicalOrderIsCaptureOrderIndependent) {
  const DistributionSpec dist = DistributionSpec::SmallDomain(64);
  std::vector<Tuple> pairs;
  for (std::uint64_t r = 0; r < 20; ++r) {
    for (std::uint64_t s = 0; s < 3; ++s) pairs.push_back(Tuple{r, 100 + s});
  }
  std::vector<Tuple> shuffled = pairs;
  std::reverse(shuffled.begin(), shuffled.end());
  const auto a = link_stage_output(pairs, 7, dist, 42);
  const auto b = link_stage_output(shuffled, 7, dist, 42);
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(a->source_checksum, 7u);
}

TEST(LinkStageOutputTest, KeyDependsOnlyOnBuildRowId) {
  const DistributionSpec dist = DistributionSpec::SmallDomain(64);
  std::vector<Tuple> pairs = {Tuple{5, 1}, Tuple{5, 2}, Tuple{6, 1}};
  const auto out = link_stage_output(pairs, 0, dist, 9);
  ASSERT_EQ(out->rows.size(), 3u);
  // All matches of build row 5 carry the same derived key (FK
  // carry-through); derived ids are the pair signatures.
  std::uint64_t key5 = 0, key5_count = 0;
  for (const Tuple& row : out->rows) {
    if (row.id == match_signature(5, 1) || row.id == match_signature(5, 2)) {
      if (key5_count++ == 0) key5 = row.key;
      EXPECT_EQ(row.key, key5);
    }
  }
  EXPECT_EQ(key5_count, 2u);
}

// --- end-to-end on the sim runtime ---

TEST(PipelineTest, SingleStageEqualsPlainRunAndOracle) {
  const auto plan = small_plan(1);
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 1u);
  EXPECT_TRUE(pipeline.stages[0].executed);
  EXPECT_EQ(pipeline.final.matches, pipeline.stages[0].run.join().matches);

  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
}

TEST(PipelineTest, ThreeStagesMatchOracleByteIdentically) {
  const auto plan = small_plan(3);
  const PipelineResult pipeline = run_pipeline(plan);
  const MultiJoinResult oracle = serial_multi_join(plan);
  ASSERT_EQ(pipeline.stages.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(pipeline.stages[k].run.join(), oracle.stage_results[k])
        << "stage " << k;
  }
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  EXPECT_EQ(pipeline.final_rows.size(), pipeline.final.matches);
}

TEST(PipelineTest, ChecksumFlowsBetweenStages) {
  const auto plan = small_plan(3);
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 3u);
  EXPECT_EQ(pipeline.stages[0].build_input_checksum, 0u);
  for (std::size_t k = 1; k < 3; ++k) {
    EXPECT_EQ(pipeline.stages[k].build_input_checksum,
              pipeline.stages[k - 1].output_checksum)
        << "stage " << k;
  }
}

TEST(PipelineTest, CardinalityFlowsBetweenStages) {
  const auto plan = small_plan(3);
  const PipelineResult pipeline = run_pipeline(plan);
  for (std::size_t k = 1; k < 3; ++k) {
    EXPECT_EQ(pipeline.stages[k].run.metrics.build_tuples_total,
              pipeline.stages[k - 1].output_rows);
  }
}

TEST(PipelineTest, SharedBudgetCoversAllStagesAndNeverOverflows) {
  auto plan = small_plan(2);
  // Make the second stage's build side big enough to force expansion even
  // though the first stage starts tiny.
  plan.first_build.tuple_count = 30'000;
  plan.stages[1].initial_join_nodes = 1;
  const PipelineResult pipeline = run_pipeline(plan);
  EXPECT_GT(pipeline.peak_join_nodes, 2u);
  EXPECT_LE(pipeline.peak_join_nodes, plan.join_pool_nodes);
  EXPECT_GT(pipeline.total_time, 0.0);
  for (const StageResult& stage : pipeline.stages) {
    EXPECT_LE(stage.peak_join_nodes, plan.join_pool_nodes);
  }
}

TEST(PipelineTest, TinyBudgetDeniesExpansionButStaysCorrect) {
  auto plan = small_plan(2);
  plan.first_build.tuple_count = 30'000;
  plan.join_pool_nodes = 2;
  plan.stages[0].initial_join_nodes = 1;
  plan.stages[1].initial_join_nodes = 1;
  plan.stages[0].algorithm = Algorithm::kHybrid;
  const PipelineResult pipeline = run_pipeline(plan);
  // Something wanted a third node and the ledger said no; the stage fell
  // back to the pool-exhausted path and the answer is still exact.
  EXPECT_GT(pipeline.denied_expansions, 0u);
  EXPECT_LE(pipeline.peak_join_nodes, 2u);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
}

TEST(PipelineTest, MixedAlgorithmsPerStage) {
  auto plan = small_plan(3);
  plan.stages[0].algorithm = Algorithm::kSplit;
  plan.stages[1].algorithm = Algorithm::kReplicate;
  plan.stages[2].algorithm = Algorithm::kOutOfCore;
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 3u);
  EXPECT_GT(pipeline.final.matches, 0u);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
}

TEST(PipelineTest, Deterministic) {
  const auto plan = small_plan(2);
  const PipelineResult a = run_pipeline(plan);
  const PipelineResult b = run_pipeline(plan);
  EXPECT_EQ(a.final, b.final);
  EXPECT_EQ(a.final_rows, b.final_rows);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(PipelineTest, EmptyIntermediateShortCircuits) {
  auto plan = small_plan(2);
  // Probe keys far outside the build domain: stage 0 produces zero rows;
  // stage 1 is decided without running and the final result is empty.
  plan.first_build.tuple_count = 50;
  plan.first_build.dist = DistributionSpec::SmallDomain(1u << 30);
  plan.stages[0].probe.tuple_count = 50;
  plan.stages[0].probe.dist = DistributionSpec::Gaussian(0.999999, 1e-9);
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 2u);
  if (pipeline.stages[0].output_rows == 0) {
    EXPECT_FALSE(pipeline.stages[1].executed);
    EXPECT_EQ(pipeline.final.matches, 0u);
    EXPECT_TRUE(pipeline.final_rows.empty());
  }
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
}

}  // namespace
}  // namespace ehja
