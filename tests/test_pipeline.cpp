// Tests for multi-way join pipelines (paper ss6 future work).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

PipelinePlan small_plan(std::size_t stages) {
  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 8'000, Schema{100},
                                  DistributionSpec::SmallDomain(4096)};
  plan.intermediate_dist = DistributionSpec::SmallDomain(4096);
  plan.intermediate_tuple_bytes = 200;
  plan.join_pool_nodes = 16;
  plan.data_sources = 2;
  plan.node_hash_memory_bytes = 1500 * tuple_footprint(Schema{200});
  for (std::size_t k = 0; k < stages; ++k) {
    PipelineStage stage;
    stage.probe = RelationSpec{RelTag::kS, 10'000, Schema{100},
                               DistributionSpec::SmallDomain(4096)};
    stage.algorithm = Algorithm::kHybrid;
    stage.initial_join_nodes = 2;
    plan.stages.push_back(stage);
  }
  return plan;
}

TEST(PipelineTest, SingleStageEqualsPlainRun) {
  const auto plan = small_plan(1);
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 1u);
  EXPECT_EQ(pipeline.final_matches, pipeline.stages[0].join().matches);
  EXPECT_DOUBLE_EQ(pipeline.total_time,
                   pipeline.stages[0].metrics.total_time());
}

TEST(PipelineTest, CardinalityFlowsBetweenStages) {
  const auto plan = small_plan(3);
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 3u);
  for (std::size_t k = 1; k < 3; ++k) {
    const std::uint64_t upstream = pipeline.stages[k - 1].join().matches;
    EXPECT_EQ(pipeline.stages[k].metrics.build_tuples_total,
              std::max<std::uint64_t>(upstream, 1));
  }
}

TEST(PipelineTest, StagesExpandIndependently) {
  auto plan = small_plan(2);
  // Make the second stage's build side big enough to force expansion even
  // though the first stage starts tiny.
  plan.first_build.tuple_count = 30'000;
  plan.stages[1].initial_join_nodes = 1;
  const PipelineResult pipeline = run_pipeline(plan);
  EXPECT_GT(pipeline.peak_join_nodes, 2u);
  EXPECT_GT(pipeline.total_time, 0.0);
}

TEST(PipelineTest, MixedAlgorithmsPerStage) {
  auto plan = small_plan(3);
  plan.stages[0].algorithm = Algorithm::kSplit;
  plan.stages[1].algorithm = Algorithm::kReplicate;
  plan.stages[2].algorithm = Algorithm::kOutOfCore;
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 3u);
  EXPECT_GT(pipeline.final_matches, 0u);
}

TEST(PipelineTest, Deterministic) {
  const auto plan = small_plan(2);
  const PipelineResult a = run_pipeline(plan);
  const PipelineResult b = run_pipeline(plan);
  EXPECT_EQ(a.final_matches, b.final_matches);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(PipelineTest, EmptyIntermediateDoesNotWedge) {
  auto plan = small_plan(2);
  // Disjoint key domains: stage 1 produces zero matches; stage 2 must
  // still run (with the minimum build of one tuple) and produce zero.
  plan.first_build.dist = DistributionSpec::SmallDomain(1024);
  plan.stages[0].probe.dist = DistributionSpec::Zipf(1.1, 7);  // scattered
  const PipelineResult pipeline = run_pipeline(plan);
  ASSERT_EQ(pipeline.stages.size(), 2u);
}

TEST(PipelineDeathTest, EmptyPlanAborts) {
  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 10, Schema{100},
                                  DistributionSpec::Uniform()};
  EXPECT_DEATH(run_pipeline(plan), "stage");
}

}  // namespace
}  // namespace ehja
