// Integration tests: full distributed runs compared against the serial
// oracle, across algorithms, distributions, initial node counts and both
// runtimes.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

/// A scaled-down workload that still overflows: ~20k tuples against a
/// budget of ~2000 tuples per node.
EhjaConfig small_config(Algorithm algorithm,
                        DistributionSpec dist = DistributionSpec::SmallDomain(4096),
                        std::uint32_t initial_nodes = 4) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = initial_nodes;
  config.join_pool_nodes = 24;
  config.data_sources = 3;
  config.build_rel.tuple_count = 20'000;
  config.probe_rel.tuple_count = 20'000;
  config.build_rel.dist = dist;
  config.probe_rel.dist = dist;
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  config.node_hash_memory_bytes = 2000 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 256;
  return config;
}

class AlgorithmSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmSuite, MatchesSerialOracleSmallDomain) {
  const auto config = small_config(GetParam());
  const JoinResult expected = reference_join(config);
  ASSERT_GT(expected.matches, 0u) << "workload must produce matches";
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join().matches, expected.matches);
  EXPECT_EQ(run.join().checksum, expected.checksum);
}

TEST_P(AlgorithmSuite, MatchesSerialOracleUniform) {
  auto config = small_config(GetParam(), DistributionSpec::Uniform());
  const JoinResult expected = reference_join(config);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), expected);
}

TEST_P(AlgorithmSuite, MatchesSerialOracleGaussianSkew) {
  auto config = small_config(GetParam(), DistributionSpec::Gaussian(0.5, 1e-4));
  const JoinResult expected = reference_join(config);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), expected);
}

TEST_P(AlgorithmSuite, MatchesSerialOracleZipf) {
  auto config = small_config(GetParam(), DistributionSpec::Zipf(1.1, 2000));
  const JoinResult expected = reference_join(config);
  ASSERT_GT(expected.matches, 0u);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), expected);
}

TEST_P(AlgorithmSuite, SingleInitialNode) {
  const auto config = small_config(GetParam(), DistributionSpec::SmallDomain(4096), 1);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST_P(AlgorithmSuite, NoOverflowWhenMemoryIsAmple) {
  auto config = small_config(GetParam());
  config.node_hash_memory_bytes = 64 * kMiB;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.expansions, 0u);
  EXPECT_EQ(run.metrics.extra_build_chunks, 0u);
}

TEST_P(AlgorithmSuite, ThreadRuntimeAgreesWithSimRuntime) {
  const auto config = small_config(GetParam());
  const RunResult sim = run_ehja(config, RuntimeKind::kSim);
  const RunResult thread = run_ehja(config, RuntimeKind::kThread);
  EXPECT_EQ(sim.join(), thread.join());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSuite,
    ::testing::Values(Algorithm::kSplit, Algorithm::kReplicate,
                      Algorithm::kHybrid, Algorithm::kOutOfCore,
                      Algorithm::kAdaptive),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      switch (info.param) {
        case Algorithm::kSplit: return "Split";
        case Algorithm::kReplicate: return "Replicated";
        case Algorithm::kHybrid: return "Hybrid";
        case Algorithm::kOutOfCore: return "OutOfCore";
        case Algorithm::kAdaptive: return "Adaptive";
      }
      return "Unknown";
    });

// ------------------------------------------------ behaviour under overflow

TEST(IntegrationTest, ExpandingAlgorithmsRecruitNodes) {
  for (const Algorithm algorithm :
       {Algorithm::kSplit, Algorithm::kReplicate, Algorithm::kHybrid}) {
    const RunResult run = run_ehja(small_config(algorithm));
    EXPECT_GT(run.metrics.expansions, 0u) << algorithm_name(algorithm);
    EXPECT_GT(run.metrics.final_join_nodes, run.metrics.initial_join_nodes);
  }
}

TEST(IntegrationTest, OutOfCoreNeverExpands) {
  const RunResult run = run_ehja(small_config(Algorithm::kOutOfCore));
  EXPECT_EQ(run.metrics.expansions, 0u);
  EXPECT_EQ(run.metrics.final_join_nodes, run.metrics.initial_join_nodes);
  // It must have spilled instead.
  std::uint64_t spilled = 0;
  for (const auto& node : run.metrics.nodes) {
    spilled += node.spilled_build_tuples;
  }
  EXPECT_GT(spilled, 0u);
}

TEST(IntegrationTest, SplitHasNoProbeDuplication) {
  const auto config = small_config(Algorithm::kSplit);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.metrics.probe_tuples_total, config.probe_rel.tuple_count);
}

TEST(IntegrationTest, ReplicationDuplicatesProbeTuples) {
  const auto config = small_config(Algorithm::kReplicate);
  const RunResult run = run_ehja(config);
  ASSERT_GT(run.metrics.expansions, 0u);
  EXPECT_GT(run.metrics.probe_tuples_total, config.probe_rel.tuple_count);
}

TEST(IntegrationTest, HybridReshuffleRestoresSingleOwnership) {
  const auto config = small_config(Algorithm::kHybrid);
  const RunResult run = run_ehja(config);
  ASSERT_GT(run.metrics.expansions, 0u);
  // After the reshuffle, each probe tuple goes to exactly one node.
  EXPECT_EQ(run.metrics.probe_tuples_total, config.probe_rel.tuple_count);
  EXPECT_GT(run.metrics.reshuffle_time(), 0.0);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto config = small_config(Algorithm::kHybrid);
  const RunResult a = run_ehja(config);
  const RunResult b = run_ehja(config);
  EXPECT_EQ(a.metrics.t_complete, b.metrics.t_complete);
  EXPECT_EQ(a.metrics.extra_build_chunks, b.metrics.extra_build_chunks);
  EXPECT_EQ(a.join(), b.join());
}

TEST(IntegrationTest, BuildTuplesConserved) {
  for (const Algorithm algorithm :
       {Algorithm::kSplit, Algorithm::kReplicate, Algorithm::kHybrid,
        Algorithm::kOutOfCore}) {
    const auto config = small_config(algorithm);
    const RunResult run = run_ehja(config);
    EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count)
        << algorithm_name(algorithm);
  }
}

TEST(IntegrationTest, PhaseTimelineIsOrdered) {
  const RunResult run = run_ehja(small_config(Algorithm::kHybrid));
  const auto& m = run.metrics;
  EXPECT_LE(m.t_start, m.t_build_end);
  EXPECT_LE(m.t_build_end, m.t_reshuffle_end);
  EXPECT_LE(m.t_reshuffle_end, m.t_probe_end);
  EXPECT_LE(m.t_probe_end, m.t_complete);
  EXPECT_GT(m.total_time(), 0.0);
}

TEST(IntegrationTest, BalancedInitialPartitionStaysCorrect) {
  auto config = small_config(Algorithm::kHybrid,
                             DistributionSpec::Gaussian(0.5, 2e-3));
  config.balanced_initial_partition = true;
  config.partition_sample = 20'000;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(IntegrationTest, BalancedInitialPartitionReducesExpansionsUnderSkew) {
  auto config = small_config(Algorithm::kReplicate,
                             DistributionSpec::Gaussian(0.5, 2e-3));
  const RunResult equal_width = run_ehja(config);
  config.balanced_initial_partition = true;
  config.partition_sample = 20'000;
  const RunResult balanced = run_ehja(config);
  EXPECT_EQ(balanced.join(), equal_width.join());
  // A skew-aware start needs fewer (or equal) runtime expansions.
  EXPECT_LE(balanced.metrics.expansions, equal_width.metrics.expansions);
  // And the initial load imbalance shrinks measurably.
  EXPECT_GT(equal_width.metrics.expansions, 0u);
}

TEST(IntegrationTest, BalancedInitialPartitionWorksForAllAlgorithms) {
  for (const Algorithm algorithm :
       {Algorithm::kSplit, Algorithm::kReplicate, Algorithm::kHybrid,
        Algorithm::kOutOfCore}) {
    auto config = small_config(algorithm, DistributionSpec::Zipf(1.1, 2000));
    config.balanced_initial_partition = true;
    config.partition_sample = 10'000;
    const RunResult run = run_ehja(config);
    EXPECT_EQ(run.join(), reference_join(config)) << algorithm_name(algorithm);
  }
}

// ------------------------------------------------- adaptive (kAdaptive)

TEST(AdaptiveTest, AgreesWithOtherAlgorithmsOnSkewedWorkload) {
  // Skewed, duplicate-key workload: kAdaptive must produce exactly the
  // oracle's (and hence every other EHJA's) matches and checksum no matter
  // which expansion strategy it picks at each overflow.
  const auto config = small_config(Algorithm::kAdaptive,
                                   DistributionSpec::Zipf(1.1, 2000));
  const JoinResult expected = reference_join(config);
  ASSERT_GT(expected.matches, 0u);
  const RunResult adaptive = run_ehja(config);
  EXPECT_EQ(adaptive.join(), expected);

  auto hybrid_config = config;
  hybrid_config.algorithm = Algorithm::kHybrid;
  const RunResult hybrid = run_ehja(hybrid_config);
  EXPECT_EQ(adaptive.join(), hybrid.join());

  // Every expansion was an explicit split-vs-replicate decision.
  EXPECT_GT(adaptive.metrics.expansions, 0u);
  EXPECT_EQ(adaptive.metrics.adaptive_splits + adaptive.metrics.adaptive_replicas,
            adaptive.metrics.expansions);
}

TEST(AdaptiveTest, ExercisesBothDecisionBranches) {
  // Gaussian build skew with a small probe side: the hot node's first
  // overflows carry a large share of the observed build (split wins), the
  // later ones a small share against a cheap broadcast (replicate wins).
  EhjaConfig config;
  config.algorithm = Algorithm::kAdaptive;
  config.build_rel.tuple_count = 200'000;
  config.probe_rel.tuple_count = 20'000;
  config.build_rel.dist = DistributionSpec::Gaussian(0.25, 0.08);
  config.probe_rel.dist = DistributionSpec::Gaussian(0.25, 0.08);
  config.node_hash_memory_bytes =
      static_cast<std::uint64_t>(80.0 * kMiB / 50.0);
  config.chunk_tuples = 2'000;
  config.generation_slice_tuples = 2'000;

  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_GT(run.metrics.adaptive_splits, 0u);
  EXPECT_GT(run.metrics.adaptive_replicas, 0u);
  EXPECT_EQ(run.metrics.adaptive_splits + run.metrics.adaptive_replicas,
            run.metrics.expansions);
  EXPECT_GT(run.metrics.final_join_nodes, run.metrics.initial_join_nodes);
}

TEST(IntegrationTest, AsymmetricRelationSizes) {
  auto config = small_config(Algorithm::kReplicate);
  config.build_rel.tuple_count = 5'000;
  config.probe_rel.tuple_count = 40'000;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(IntegrationTest, LargerRelationBuildsHashTable) {
  // The paper's Fig. 8 scenario: the build side is the big one.
  auto config = small_config(Algorithm::kReplicate);
  config.build_rel.tuple_count = 40'000;
  config.probe_rel.tuple_count = 5'000;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_GT(run.metrics.expansions, 0u);
}

}  // namespace
}  // namespace ehja
