// Behaviour-preservation pins.
//
// The expansion-policy extraction (core/expansion_policy) is supposed to be
// a pure refactor of the scheduler monolith: not just "same join result"
// but the same *event history* -- the same expansions at the same virtual
// times, hence the same recruited-node counts and the same number of extra
// build chunks caused by stale partition maps.  These tests pin the values
// the pre-refactor scheduler produced so that any accidental behaviour
// change in the policy layer (queue ordering, drain gating, map mutation
// order) shows up as a diff instead of silently shifting the simulated
// results the paper figures are built from.
//
// If a deliberate protocol change invalidates a pin, re-derive the values
// with tools/ehja_run and update them alongside the change.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

struct Pin {
  std::uint64_t matches;
  std::uint64_t checksum;
  std::uint32_t expansions;
  std::uint32_t final_nodes;
  std::uint64_t extra_chunks;
};

void expect_pin(const EhjaConfig& config, const Pin& pin) {
  const RunResult run = run_ehja(config, RuntimeKind::kSim);
  EXPECT_EQ(run.join().matches, pin.matches);
  EXPECT_EQ(run.join().checksum, pin.checksum);
  EXPECT_EQ(run.metrics.expansions, pin.expansions);
  EXPECT_EQ(run.metrics.final_join_nodes, pin.final_nodes);
  EXPECT_EQ(run.metrics.extra_build_chunks, pin.extra_chunks);
}

/// The paper's base shape scaled by 1/50 (200k x 100 B tuples against a
/// 1/50 memory budget): overflows exactly like the 10 M run but finishes
/// in well under a second.
EhjaConfig scaled_config(Algorithm algorithm) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.build_rel.tuple_count = 200'000;
  config.probe_rel.tuple_count = 200'000;
  config.node_hash_memory_bytes =
      static_cast<std::uint64_t>(80.0 * kMiB / 50.0);
  config.chunk_tuples = 2'000;
  config.generation_slice_tuples = 2'000;
  return config;
}

/// The scaled shape on a 2^16-value key domain: duplicate keys, so the
/// join produces matches and the checksum pins actual output tuples.
EhjaConfig small_domain_config(Algorithm algorithm) {
  EhjaConfig config = scaled_config(algorithm);
  config.build_rel.dist = DistributionSpec::SmallDomain(1u << 16);
  config.probe_rel.dist = DistributionSpec::SmallDomain(1u << 16);
  return config;
}

// --------------------------------------- scaled uniform (disjoint keys)

TEST(SeedPinScaled, Split) {
  expect_pin(scaled_config(Algorithm::kSplit), {0, 0, 12, 16, 107});
}

TEST(SeedPinScaled, Replicated) {
  expect_pin(scaled_config(Algorithm::kReplicate), {0, 0, 9, 13, 51});
}

TEST(SeedPinScaled, Hybrid) {
  expect_pin(scaled_config(Algorithm::kHybrid), {0, 0, 9, 13, 134});
}

TEST(SeedPinScaled, OutOfCore) {
  expect_pin(scaled_config(Algorithm::kOutOfCore), {0, 0, 0, 4, 0});
}

// ------------------------------- default config (the paper's 10 M base)

TEST(SeedPinDefault, Split) {
  EhjaConfig config;
  config.algorithm = Algorithm::kSplit;
  expect_pin(config, {0, 0, 12, 16, 550});
}

TEST(SeedPinDefault, Replicated) {
  EhjaConfig config;
  config.algorithm = Algorithm::kReplicate;
  expect_pin(config, {0, 0, 12, 16, 117});
}

TEST(SeedPinDefault, Hybrid) {
  EhjaConfig config;
  config.algorithm = Algorithm::kHybrid;
  expect_pin(config, {0, 0, 12, 16, 895});
}

TEST(SeedPinDefault, OutOfCore) {
  EhjaConfig config;
  config.algorithm = Algorithm::kOutOfCore;
  expect_pin(config, {0, 0, 0, 4, 0});
}

// -------------------------- small key domain (match-producing checksum)

constexpr std::uint64_t kSmallDomainMatches = 611'188;
constexpr std::uint64_t kSmallDomainChecksum = 0xb5ec07f51d05e4eaull;

TEST(SeedPinSmallDomain, Split) {
  expect_pin(small_domain_config(Algorithm::kSplit),
             {kSmallDomainMatches, kSmallDomainChecksum, 11, 15, 96});
}

TEST(SeedPinSmallDomain, Replicated) {
  expect_pin(small_domain_config(Algorithm::kReplicate),
             {kSmallDomainMatches, kSmallDomainChecksum, 10, 14, 47});
}

TEST(SeedPinSmallDomain, Hybrid) {
  expect_pin(small_domain_config(Algorithm::kHybrid),
             {kSmallDomainMatches, kSmallDomainChecksum, 10, 14, 138});
}

TEST(SeedPinSmallDomain, OutOfCore) {
  expect_pin(small_domain_config(Algorithm::kOutOfCore),
             {kSmallDomainMatches, kSmallDomainChecksum, 0, 4, 0});
}

}  // namespace
}  // namespace ehja
