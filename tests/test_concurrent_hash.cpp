// Concurrent hash table and intra-node pool tests.
//
// Three layers of assurance for the first truly concurrent hot path inside
// a join process (DESIGN.md §11):
//
//   * IntraPool unit tests -- every lane runs, generations reuse the same
//     workers, a 1-lane pool degenerates to a plain call;
//   * differential fuzz -- NodeTable at 1..8 lanes, shared and merge
//     disciplines, against the scalar LocalHashTable oracle across uniform,
//     small-domain and zipf-skewed key distributions, interleaving inserts,
//     probes and range extraction;
//   * raw stress -- concurrent insert_rows, concurrent probe_rows,
//     insert-while-probe and a merge-protocol hammer driven by bare
//     std::threads so TSan sees the unwrapped access pattern.
//
// The stress tests are sized to finish quickly under TSan's ~10x slowdown;
// CI's tsan job runs this binary on every PR.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/node_table.hpp"
#include "hash/concurrent_key_index.hpp"
#include "hash/local_hash_table.hpp"
#include "runtime/intra_pool.hpp"
#include "util/rng.hpp"

namespace ehja {
namespace {

// --------------------------------------------------------------- IntraPool

TEST(IntraPoolTest, SingleLaneRunsInline) {
  IntraPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  unsigned ran = 0;
  pool.run([&](unsigned t) {
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(IntraPoolTest, EveryLaneRunsOncePerGeneration) {
  IntraPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](unsigned t) { hits[t].fetch_add(1); });
    for (unsigned t = 0; t < 4; ++t) EXPECT_EQ(hits[t].load(), 1);
  }
}

TEST(IntraPoolTest, RunIsABarrier) {
  IntraPool pool(4);
  // Writes from one region must be visible to the next with plain reads --
  // the property NodeTable's serial bookkeeping depends on.
  std::vector<int> data(4, 0);
  pool.run([&](unsigned t) { data[t] = static_cast<int>(t) + 1; });
  int sum = 0;
  for (const int v : data) sum += v;
  EXPECT_EQ(sum, 1 + 2 + 3 + 4);
}

TEST(IntraPoolTest, SlicesPartitionExactly) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 4096ul, 10001ul}) {
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      std::size_t covered = 0, prev_end = 0;
      for (unsigned t = 0; t < threads; ++t) {
        const auto [begin, end] = IntraPool::slice(n, threads, t);
        EXPECT_EQ(begin, prev_end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

// --------------------------------------------------------- workload shapes

enum class Shape { kUniform, kSmallDomain, kZipf };

/// Random batch in `range` shaped by `shape`: uniform positions with ~25%
/// duplicated keys, a small closed key domain (every key collides), or a
/// zipf-like concentration where most rows hit a handful of hot positions.
TupleBatch shaped_batch(SplitMix64& rng, const PosRange& range,
                        std::size_t rows, Shape shape) {
  TupleBatch batch;
  batch.reserve(rows);
  constexpr std::uint64_t kLowMask = (1ull << (64 - kPositionBits)) - 1;
  std::uint64_t last_key = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t key;
    switch (shape) {
      case Shape::kUniform: {
        const std::uint64_t pos = range.lo + rng.next_u64() % range.width();
        key = (pos << (64 - kPositionBits)) | (rng.next_u64() & kLowMask);
        if (i > 0 && rng.next_u64() % 4 == 0) key = last_key;
        break;
      }
      case Shape::kSmallDomain: {
        // 64 distinct keys total: long same-key match lists everywhere.
        const std::uint64_t k = rng.next_u64() % 64;
        const std::uint64_t pos = range.lo + k % range.width();
        key = (pos << (64 - kPositionBits)) | k;
        break;
      }
      case Shape::kZipf: {
        // Crude zipf: rank r with probability ~ 1/(r+1); a few positions
        // soak up most rows, the tail stays wide.
        std::uint64_t rank = 0;
        while (rank < 30 && (rng.next_u64() & 1) == 0) ++rank;
        const std::uint64_t pos =
            range.lo + (rank * 97) % std::min<std::uint64_t>(range.width(),
                                                             rank * 97 + 1);
        key = (pos << (64 - kPositionBits)) | (rng.next_u64() & kLowMask);
        if (i > 0 && rng.next_u64() % 3 == 0) key = last_key;
        break;
      }
    }
    last_key = key;
    batch.append(rng.next_u64(), key);
  }
  return batch;
}

// ---------------------------------------------------- differential fuzzing

/// NodeTable at `threads` lanes must reproduce the scalar oracle's results
/// exactly: probe aggregates, counts, footprint, and (for extract) content.
void run_differential(std::uint32_t threads, IntraMode mode, Shape shape,
                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::uint64_t lo = (rng.next_u64() % 8) * 500;
  const std::uint64_t width = 64 + rng.next_u64() % 3000;
  const PosRange range{lo, lo + width};
  const Schema schema{100};
  LocalHashTable oracle(schema, range);
  NodeTable table(schema, range, threads, mode);

  for (int step = 0; step < 8; ++step) {
    const std::uint64_t op = rng.next_u64() % 4;
    if (op <= 1) {
      // NodeTable's fan-out only engages above kMinRowsPerLane * lanes;
      // size some batches past that so the parallel path is really hit.
      const std::size_t rows = (step % 2 == 0)
                                   ? NodeTable::kMinRowsPerLane * threads + 512
                                   : 1 + rng.next_u64() % 400;
      const auto batch = shaped_batch(rng, range, rows, shape);
      oracle.insert_batch(batch);
      table.insert_batch(batch);
    } else if (op == 2) {
      const std::size_t rows = NodeTable::kMinRowsPerLane * threads + 256;
      const auto batch = shaped_batch(rng, range, rows, shape);
      const auto want = oracle.probe_batch(batch);
      const auto got = table.probe_batch(batch);
      EXPECT_EQ(got.probed, want.probed);
      EXPECT_EQ(got.matches, want.matches);
      EXPECT_EQ(got.comparisons, want.comparisons);
      EXPECT_EQ(got.checksum_delta, want.checksum_delta);
    } else {
      const std::uint64_t a = lo + rng.next_u64() % width;
      const std::uint64_t b = lo + rng.next_u64() % width;
      const PosRange sub{std::min(a, b), std::max(a, b) + 1};
      auto want = oracle.extract_range(sub);
      auto got = table.extract_range(sub);
      if (mode == IntraMode::kMerge || threads == 1) {
        // Merge discipline reproduces the serial chain linkage bit for
        // bit, so even the emission *order* matches.
        EXPECT_EQ(got, want);
      } else {
        // Shared CAS order is scheduling-dependent; the multiset of
        // extracted tuples must still match exactly.
        const auto by_id = [](const Tuple& x, const Tuple& y) {
          return x.id < y.id || (x.id == y.id && x.key < y.key);
        };
        std::sort(want.begin(), want.end(), by_id);
        std::sort(got.begin(), got.end(), by_id);
        EXPECT_EQ(got, want);
      }
    }
    EXPECT_EQ(table.tuple_count(), oracle.tuple_count());
    EXPECT_EQ(table.footprint_bytes(), oracle.footprint_bytes());
  }
}

TEST(ConcurrentDifferentialFuzz, SharedMatchesOracle) {
  std::uint64_t seed = 100;
  for (const std::uint32_t threads : {1u, 2u, 3u, 4u, 8u}) {
    for (const Shape shape :
         {Shape::kUniform, Shape::kSmallDomain, Shape::kZipf}) {
      run_differential(threads, IntraMode::kShared, shape, seed++);
    }
  }
}

TEST(ConcurrentDifferentialFuzz, MergeMatchesOracle) {
  std::uint64_t seed = 200;
  for (const std::uint32_t threads : {1u, 2u, 3u, 4u, 8u}) {
    for (const Shape shape :
         {Shape::kUniform, Shape::kSmallDomain, Shape::kZipf}) {
      run_differential(threads, IntraMode::kMerge, shape, seed++);
    }
  }
}

TEST(ConcurrentDifferentialFuzz, MergeExtractOrderIsBitIdenticalToSerial) {
  // The determinism contract the docs promise: merge-mode chain linkage --
  // and therefore extraction order -- equals the serial insert order at
  // every thread count.
  SplitMix64 rng(7);
  const PosRange range{0, 2048};
  const auto batch = shaped_batch(rng, range, 6000, Shape::kUniform);
  LocalHashTable oracle(Schema{100}, range);
  oracle.insert_batch(batch);
  const auto want = oracle.extract_range(range);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    NodeTable table(Schema{100}, range, threads, IntraMode::kMerge);
    table.insert_batch(batch);
    EXPECT_EQ(table.extract_range(range), want) << "threads=" << threads;
  }
}

// ----------------------------------------------------------- raw stress

constexpr unsigned kStressThreads = 4;

/// Concurrent insert_rows from bare threads, then verify against a serial
/// oracle built from the same rows.
TEST(ConcurrentStress, ParallelInsertMatchesSerial) {
  SplitMix64 rng(42);
  const PosRange range{0, 1024};
  const Schema schema{100};
  const auto batch = shaped_batch(rng, range, 40'000, Shape::kUniform);

  ConcurrentKeyIndex table(schema, range);
  table.reserve_rows(batch.size());
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto [begin, end] =
          IntraPool::slice(batch.size(), kStressThreads, t);
      table.insert_rows(batch, begin, end);
    });
  }
  for (auto& th : threads) th.join();

  LocalHashTable oracle(schema, range);
  oracle.insert_batch(batch);
  EXPECT_EQ(table.tuple_count(), oracle.tuple_count());
  EXPECT_EQ(table.footprint_bytes(), oracle.footprint_bytes());
  const auto probe = shaped_batch(rng, range, 20'000, Shape::kUniform);
  const auto want = oracle.probe_batch(probe);
  const auto got = table.probe_batch(probe);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.comparisons, want.comparisons);
  EXPECT_EQ(got.checksum_delta, want.checksum_delta);
}

/// Concurrent probe_rows from bare threads over an immutable table.
TEST(ConcurrentStress, ParallelProbeMatchesSerial) {
  SplitMix64 rng(43);
  const PosRange range{0, 1024};
  const Schema schema{100};
  const auto build = shaped_batch(rng, range, 30'000, Shape::kSmallDomain);
  const auto probe = shaped_batch(rng, range, 30'000, Shape::kSmallDomain);

  ConcurrentKeyIndex table(schema, range);
  table.insert_batch(build);
  table.ensure_index();
  std::vector<ConcurrentKeyIndex::BatchProbeResult> lane(kStressThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto [begin, end] =
          IntraPool::slice(probe.size(), kStressThreads, t);
      lane[t] = table.probe_rows(probe, begin, end);
    });
  }
  for (auto& th : threads) th.join();
  ConcurrentKeyIndex::BatchProbeResult got;
  for (const auto& r : lane) {
    got.probed += r.probed;
    got.matches += r.matches;
    got.comparisons += r.comparisons;
    got.checksum_delta += r.checksum_delta;
  }

  LocalHashTable oracle(schema, range);
  oracle.insert_batch(build);
  const auto want = oracle.probe_batch(probe);
  EXPECT_EQ(got.probed, want.probed);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.comparisons, want.comparisons);
  EXPECT_EQ(got.checksum_delta, want.checksum_delta);
}

/// Inserters and probers in flight at once against a live index -- the
/// spill-path interleaving.  Mid-flight probe results are timing-dependent
/// by design; the test asserts race-freedom (TSan) plus exact final state.
TEST(ConcurrentStress, InsertWhileProbe) {
  SplitMix64 rng(44);
  const PosRange range{0, 1024};
  const Schema schema{100};
  const auto pre = shaped_batch(rng, range, 10'000, Shape::kUniform);
  const auto extra = shaped_batch(rng, range, 10'000, Shape::kUniform);
  const auto probe = shaped_batch(rng, range, 10'000, Shape::kUniform);

  ConcurrentKeyIndex table(schema, range);
  table.insert_batch(pre);
  table.ensure_index();       // index live: inserts now publish into it
  table.reserve_rows(extra.size());

  std::vector<std::thread> threads;
  constexpr unsigned kWriters = 2, kReaders = 2;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      const auto [begin, end] = IntraPool::slice(extra.size(), kWriters, t);
      table.insert_rows(extra, begin, end);
    });
  }
  std::atomic<std::uint64_t> probed_total{0};
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      const auto [begin, end] = IntraPool::slice(probe.size(), kReaders, t);
      const auto r = table.probe_rows(probe, begin, end);
      probed_total.fetch_add(r.probed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(probed_total.load(), probe.size());

  LocalHashTable oracle(schema, range);
  oracle.insert_batch(pre);
  oracle.insert_batch(extra);
  EXPECT_EQ(table.tuple_count(), oracle.tuple_count());
  const auto want = oracle.probe_batch(probe);
  const auto got = table.probe_batch(probe);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.checksum_delta, want.checksum_delta);
}

/// Merge-protocol hammer: many begin/scatter/merge/finish cycles driven by
/// bare threads, each cycle checked for the bit-identical-to-serial chain
/// linkage the discipline guarantees.
TEST(ConcurrentStress, MergeProtocolHammer) {
  SplitMix64 rng(45);
  const PosRange range{0, 512};
  const Schema schema{100};
  ConcurrentKeyIndex table(schema, range);
  LocalHashTable oracle(schema, range);

  for (int cycle = 0; cycle < 12; ++cycle) {
    const auto batch = shaped_batch(
        rng, range, 4'000,
        cycle % 2 == 0 ? Shape::kUniform : Shape::kZipf);
    oracle.insert_batch(batch);
    table.begin_merge(batch, kStressThreads);
    {
      std::vector<std::thread> threads;
      for (unsigned t = 0; t < kStressThreads; ++t) {
        threads.emplace_back(
            [&, t] { table.scatter_rows(batch, t, kStressThreads); });
      }
      for (auto& th : threads) th.join();
    }
    {
      std::vector<std::thread> threads;
      for (unsigned t = 0; t < kStressThreads; ++t) {
        threads.emplace_back(
            [&, t] { table.merge_subrange(batch, t, kStressThreads); });
      }
      for (auto& th : threads) th.join();
    }
    table.finish_merge(batch);
    EXPECT_EQ(table.tuple_count(), oracle.tuple_count());
  }
  // Chain linkage identical to serial insert order => identical extraction.
  EXPECT_EQ(table.extract_range(range), oracle.extract_range(range));
}

// ------------------------------------------------- serial API equivalence

TEST(ConcurrentKeyIndexTest, SerialSurgeryMatchesLocalHashTable) {
  SplitMix64 rng(46);
  const PosRange range{100, 1100};
  const Schema schema{100};
  ConcurrentKeyIndex table(schema, range);
  LocalHashTable oracle(schema, range);
  const auto batch = shaped_batch(rng, range, 5'000, Shape::kUniform);
  table.insert_batch(batch);
  oracle.insert_batch(batch);

  EXPECT_EQ(table.histogram(64).weights(), oracle.histogram(64).weights());
  EXPECT_EQ(table.extract_range(PosRange{100, 600}),
            oracle.extract_range(PosRange{100, 600}));
  table.set_range(PosRange{600, 1100});
  oracle.set_range(PosRange{600, 1100});
  EXPECT_EQ(table.tuple_count(), oracle.tuple_count());
  const auto probe = shaped_batch(rng, PosRange{600, 1100}, 2'000,
                                  Shape::kUniform);
  const auto want = oracle.probe_batch(probe);
  const auto got = table.probe_batch(probe);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.comparisons, want.comparisons);
  EXPECT_EQ(got.checksum_delta, want.checksum_delta);

  table.clear();
  oracle.clear();
  EXPECT_EQ(table.tuple_count(), 0u);
  EXPECT_EQ(table.footprint_bytes(), 0u);
}

}  // namespace
}  // namespace ehja
