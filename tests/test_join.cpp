// Unit tests for the serial reference join and the hybrid-hash spiller.
#include <gtest/gtest.h>

#include "join/grace_join.hpp"
#include "join/serial_join.hpp"
#include "join/sort_merge_join.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"

namespace ehja {
namespace {

Relation make_relation(RelTag tag, std::uint64_t count, DistributionSpec dist,
                       std::uint64_t seed = 7) {
  RelationSpec spec;
  spec.tag = tag;
  spec.tuple_count = count;
  spec.schema = Schema{100};
  spec.dist = dist;
  return materialize(spec, seed, 2);
}

TEST(SerialJoinTest, DisjointKeysNoMatches) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  r.add({1, 100});
  s.add({2, 200});
  const auto result = serial_hash_join(r, s);
  EXPECT_EQ(result.matches, 0u);
  EXPECT_EQ(result.checksum, 0u);
}

TEST(SerialJoinTest, CrossProductOnDuplicateKeys) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  for (std::uint64_t i = 0; i < 3; ++i) r.add({i, 42});
  for (std::uint64_t i = 0; i < 4; ++i) s.add({100 + i, 42});
  const auto result = serial_hash_join(r, s);
  EXPECT_EQ(result.matches, 12u);
}

TEST(SerialJoinTest, ChecksumMatchesManualComputation) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  r.add({1, 5});
  r.add({2, 6});
  s.add({3, 5});
  s.add({4, 6});
  const auto result = serial_hash_join(r, s);
  EXPECT_EQ(result.matches, 2u);
  EXPECT_EQ(result.checksum, match_signature(1, 3) + match_signature(2, 4));
}

TEST(SerialJoinTest, EmptyRelations) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  EXPECT_EQ(serial_hash_join(r, s).matches, 0u);
  s.add({1, 1});
  EXPECT_EQ(serial_hash_join(r, s).matches, 0u);
}

// ------------------------------------------------------------- sort-merge

TEST(SortMergeJoinTest, AgreesWithHashJoinAcrossDistributions) {
  for (const auto& dist :
       {DistributionSpec::Uniform(), DistributionSpec::SmallDomain(512),
        DistributionSpec::Zipf(1.2, 300),
        DistributionSpec::Gaussian(0.5, 1e-3)}) {
    const auto r = make_relation(RelTag::kR, 8000, dist);
    const auto s = make_relation(RelTag::kS, 8000, dist);
    EXPECT_EQ(sort_merge_join(r, s), serial_hash_join(r, s))
        << dist.to_string();
  }
}

TEST(SortMergeJoinTest, CrossProductOnAllEqualKeys) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  for (std::uint64_t i = 0; i < 7; ++i) r.add({i, 42});
  for (std::uint64_t i = 0; i < 11; ++i) s.add({100 + i, 42});
  const auto result = sort_merge_join(r, s);
  EXPECT_EQ(result.matches, 77u);
  EXPECT_EQ(result, serial_hash_join(r, s));
}

TEST(SortMergeJoinTest, EmptySidesYieldNothing) {
  Relation r(RelTag::kR, Schema{100});
  Relation s(RelTag::kS, Schema{100});
  EXPECT_EQ(sort_merge_join(r, s).matches, 0u);
  r.add({1, 5});
  EXPECT_EQ(sort_merge_join(r, s).matches, 0u);
}

// ------------------------------------------------------------ grace / OOC

struct GraceFixture {
  SimDisk disk{DiskConfig{}};
  CostModel cost;
};

TEST(GraceJoinTest, InCoreWhenBudgetSuffices) {
  GraceFixture fx;
  const auto r = make_relation(RelTag::kR, 5000, DistributionSpec::SmallDomain(256));
  const auto s = make_relation(RelTag::kS, 5000, DistributionSpec::SmallDomain(256));
  const auto expected = serial_hash_join(r, s);
  const auto outcome = grace_join(r, s, /*budget=*/64 * kMiB, 16, fx.disk, fx.cost);
  EXPECT_EQ(outcome.result, expected);
  EXPECT_EQ(outcome.spilled_build_tuples, 0u);
  EXPECT_EQ(fx.disk.bytes_written(), 0u);
}

TEST(GraceJoinTest, SpillsAndStillMatchesOracle) {
  GraceFixture fx;
  const auto r = make_relation(RelTag::kR, 20000, DistributionSpec::SmallDomain(512));
  const auto s = make_relation(RelTag::kS, 20000, DistributionSpec::SmallDomain(512));
  const auto expected = serial_hash_join(r, s);
  // Budget for ~4000 tuples: most partitions must spill.
  const std::uint64_t budget = 4000 * tuple_footprint(r.schema());
  const auto outcome = grace_join(r, s, budget, 16, fx.disk, fx.cost);
  EXPECT_EQ(outcome.result, expected);
  EXPECT_GT(outcome.spilled_build_tuples, 0u);
  EXPECT_GT(outcome.spilled_probe_tuples, 0u);
  EXPECT_GT(fx.disk.bytes_written(), 0u);
  EXPECT_GT(outcome.seconds, 0.0);
}

TEST(GraceJoinTest, MultiPassWhenPartitionExceedsBudget) {
  GraceFixture fx;
  // All keys in one tiny band -> one partition holds everything.
  const auto r = make_relation(RelTag::kR, 8000, DistributionSpec::Gaussian(0.5, 1e-7));
  const auto s = make_relation(RelTag::kS, 8000, DistributionSpec::Gaussian(0.5, 1e-7));
  const auto expected = serial_hash_join(r, s);
  const std::uint64_t budget = 1000 * tuple_footprint(r.schema());
  const auto outcome = grace_join(r, s, budget, 16, fx.disk, fx.cost);
  EXPECT_EQ(outcome.result, expected);
  // The hot partition is ~8x the budget: S must be rescanned several times.
  EXPECT_GT(fx.disk.bytes_read(),
            outcome.spilled_build_tuples * 100 +
                2 * outcome.spilled_probe_tuples * 100);
}

TEST(GraceJoinTest, SmallerBudgetNeverCheaper) {
  const auto r = make_relation(RelTag::kR, 10000, DistributionSpec::Uniform());
  const auto s = make_relation(RelTag::kS, 10000, DistributionSpec::Uniform());
  double prev = -1.0;
  for (const std::uint64_t tuples : {16000u, 4000u, 1000u}) {
    GraceFixture fx;
    const auto outcome = grace_join(
        r, s, tuples * tuple_footprint(r.schema()), 16, fx.disk, fx.cost);
    EXPECT_GE(outcome.seconds, prev);
    prev = outcome.seconds;
  }
}

TEST(HybridHashSpillerTest, EvictsLargestPartitionFirst) {
  GraceFixture fx;
  const Schema schema{100};
  HybridHashSpiller spiller(schema, PosRange{0, kPositionCount},
                            200 * tuple_footprint(schema), 4, fx.disk,
                            fx.cost, 1);
  // Load partition 0 (positions near 0) much heavier than the rest.
  SplitMix64 rng(3);
  for (int i = 0; i < 150; ++i) {
    spiller.add_build(Tuple{static_cast<std::uint64_t>(i),
                            rng.next_below(kPositionCount / 8)
                                << (64 - kPositionBits)});
  }
  for (int i = 0; i < 100; ++i) {
    spiller.add_build(Tuple{1000 + static_cast<std::uint64_t>(i),
                            (kPositionCount / 2 + rng.next_below(100))
                                << (64 - kPositionBits)});
  }
  ASSERT_GT(spiller.spilled_partitions(), 0u);
  // The heavy first partition must be on disk.
  EXPECT_GT(spiller.spilled_build_tuples(), 100u);
}

TEST(HybridHashSpillerTest, BuildTupleConservation) {
  GraceFixture fx;
  const Schema schema{100};
  HybridHashSpiller spiller(schema, PosRange{0, kPositionCount},
                            500 * tuple_footprint(schema), 8, fx.disk,
                            fx.cost, 1);
  SplitMix64 rng(4);
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    spiller.add_build(Tuple{i, rng.next_u64()});
  }
  EXPECT_EQ(spiller.build_tuples(), n);
  // In-memory + spilled must cover every build tuple.
  const std::uint64_t in_memory =
      spiller.memory_footprint() / tuple_footprint(schema);
  EXPECT_EQ(in_memory + spiller.spilled_build_tuples(), n);
}

}  // namespace
}  // namespace ehja
