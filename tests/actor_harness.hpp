// Test harness: a Runtime that captures sends instead of delivering them.
//
// Lets a test instantiate one actor, feed it hand-crafted messages, and
// assert exactly what it sent where -- protocol-level unit testing without
// the full simulator.  Deliveries are manual: the test pops captured
// messages and routes them (or not -- loss/reorder tests).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class HarnessRuntime final : public Runtime {
 public:
  explicit HarnessRuntime(ClusterSpec spec) : spec_(std::move(spec)) {}

  struct Sent {
    ActorId from = kInvalidActor;
    ActorId to = kInvalidActor;
    Message msg;
  };

  ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) override {
    const ActorId id = static_cast<ActorId>(actors_.size());
    actor->bind(this, id, node);
    actors_.push_back(std::move(actor));
    spawned_nodes_.push_back(node);
    // on_start is the caller's to trigger (some tests want pre-start mail).
    return id;
  }

  void send(Actor& from, ActorId to, Message msg) override {
    outbox_.push_back(Sent{from.id(), to, std::move(msg)});
  }

  void defer(Actor& from, Message msg) override {
    outbox_.push_back(Sent{from.id(), from.id(), std::move(msg)});
  }

  void charge(Actor& /*from*/, double cpu_seconds) override {
    charged_ += cpu_seconds;
  }

  SimTime actor_now(const Actor& /*actor*/) const override { return now_; }

  /// Timed self-messages land in a *separate* queue so flush_round() cannot
  /// spin forever on a self-rearming heartbeat; tests fire them explicitly
  /// with fire_timers().
  void defer_after(Actor& from, Message msg, double delay_sec) override {
    msg.from = from.id();
    timers_.push_back(Sent{from.id(), from.id(), std::move(msg)});
    last_timer_delay_ = delay_sec;
  }

  void kill_node(NodeId node) override {
    if (dead_nodes_.insert(node).second) ++kills_;
  }
  void schedule_kill(NodeId node, double /*at*/) override { kill_node(node); }
  bool node_alive(NodeId node) const override {
    return dead_nodes_.count(node) == 0;
  }
  std::uint32_t kills_executed() const override { return kills_; }

  void run() override {}
  void request_stop() override { stopped_ = true; }
  const ClusterSpec& cluster() const override { return spec_; }
  std::size_t actor_count() const override { return actors_.size(); }
  Actor& actor(ActorId id) override { return *actors_.at(static_cast<std::size_t>(id)); }

  // --- test controls ---
  void start(ActorId id) { actor(id).on_start(); }

  /// Deliver a message directly to an actor's handler.
  void deliver(ActorId to, Message msg) { actor(to).on_message(msg); }

  /// Deliver with a forged sender id.
  void deliver_from(ActorId from, ActorId to, Message msg) {
    msg.from = from;
    actor(to).on_message(msg);
  }

  /// Captured sends, oldest first.
  std::deque<Sent>& outbox() { return outbox_; }

  /// Pop and deliver every queued message whose target exists (one round);
  /// returns how many were delivered.  Self-contained actors reach
  /// quiescence by calling this in a loop.
  std::size_t flush_round() {
    std::deque<Sent> batch;
    batch.swap(outbox_);
    for (Sent& sent : batch) {
      Message msg = std::move(sent.msg);
      msg.from = sent.from;
      actor(sent.to).on_message(msg);
    }
    return batch.size();
  }

  /// Messages in the outbox addressed to `to` (without removing them).
  std::vector<Sent> sent_to(ActorId to) const {
    std::vector<Sent> out;
    for (const Sent& s : outbox_) {
      if (s.to == to) out.push_back(s);
    }
    return out;
  }

  /// Messages in the outbox with tag `tag`.
  template <typename Tag>
  std::vector<Sent> sent_with_tag(Tag tag) const {
    std::vector<Sent> out;
    for (const Sent& s : outbox_) {
      if (s.msg.tag == static_cast<int>(tag)) out.push_back(s);
    }
    return out;
  }

  /// Deliver every queued timed self-message (one batch; messages the
  /// firing handlers re-arm stay queued for the next call).
  std::size_t fire_timers() {
    std::deque<Sent> batch;
    batch.swap(timers_);
    for (Sent& sent : batch) {
      Message msg = std::move(sent.msg);
      msg.from = sent.from;
      actor(sent.to).on_message(msg);
    }
    return batch.size();
  }

  std::deque<Sent>& timers() { return timers_; }
  double last_timer_delay() const { return last_timer_delay_; }

  void advance_time(SimTime dt) { now_ += dt; }
  double charged() const { return charged_; }
  bool stopped() const { return stopped_; }
  NodeId node_of(ActorId id) const {
    return spawned_nodes_.at(static_cast<std::size_t>(id));
  }

 private:
  ClusterSpec spec_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<NodeId> spawned_nodes_;
  std::deque<Sent> outbox_;
  std::deque<Sent> timers_;
  std::set<NodeId> dead_nodes_;
  std::uint32_t kills_ = 0;
  double last_timer_delay_ = 0.0;
  SimTime now_ = 0.0;
  double charged_ = 0.0;
  bool stopped_ = false;
};

}  // namespace ehja
