// Parameterized property suites over the full protocol: correctness and
// structural invariants swept across (algorithm x distribution x initial
// nodes x sources x chunk size).
#include <gtest/gtest.h>

#include <tuple>

#include "core/driver.hpp"
#include "core/pipeline.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

struct SweepParam {
  Algorithm algorithm;
  DistKind dist;
  std::uint32_t initial_nodes;
  std::uint32_t sources;
};

DistributionSpec make_dist(DistKind kind) {
  switch (kind) {
    case DistKind::kUniform: return DistributionSpec::Uniform();
    case DistKind::kGaussian: return DistributionSpec::Gaussian(0.5, 2e-4);
    case DistKind::kZipf: return DistributionSpec::Zipf(1.1, 1000);
    case DistKind::kSmallDomain: return DistributionSpec::SmallDomain(2048);
  }
  return DistributionSpec::Uniform();
}

EhjaConfig sweep_config(const SweepParam& p) {
  EhjaConfig config;
  config.algorithm = p.algorithm;
  config.initial_join_nodes = p.initial_nodes;
  config.join_pool_nodes = 20;
  config.data_sources = p.sources;
  config.build_rel.tuple_count = 12'000;
  config.probe_rel.tuple_count = 12'000;
  config.build_rel.dist = make_dist(p.dist);
  config.probe_rel.dist = make_dist(p.dist);
  config.chunk_tuples = 400;
  config.generation_slice_tuples = 400;
  config.node_hash_memory_bytes =
      1500 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 128;
  return config;
}

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, JoinResultMatchesOracle) {
  const auto config = sweep_config(GetParam());
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST_P(ProtocolSweep, StructuralInvariants) {
  const auto config = sweep_config(GetParam());
  const RunResult run = run_ehja(config);
  const auto& m = run.metrics;

  // Every build tuple is stored exactly once.
  EXPECT_EQ(m.build_tuples_total, config.build_rel.tuple_count);
  // Expansion count matches the node ledger.
  EXPECT_EQ(m.final_join_nodes, m.initial_join_nodes + m.expansions);
  EXPECT_EQ(m.nodes.size(), m.final_join_nodes);
  // Node-to-node traffic is the sum of per-node forward counters.
  std::uint64_t forwarded = 0;
  for (const auto& node : m.nodes) forwarded += node.chunks_forwarded;
  EXPECT_EQ(forwarded, m.extra_build_chunks);
  // Non-expanding runs introduce no extra communication.
  if (m.expansions == 0 && config.algorithm != Algorithm::kOutOfCore) {
    EXPECT_EQ(m.extra_build_chunks, 0u);
  }
  // Only the split algorithm accumulates split time; only expanding
  // replication-family runs accumulate handoff time.
  if (config.algorithm == Algorithm::kSplit) {
    EXPECT_DOUBLE_EQ(m.expand_time, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(m.split_time, 0.0);
  }
  // Probe conservation: split/hybrid/OOC route each probe tuple once.
  if (config.algorithm != Algorithm::kReplicate) {
    EXPECT_EQ(m.probe_tuples_total, config.probe_rel.tuple_count);
  } else {
    EXPECT_GE(m.probe_tuples_total, config.probe_rel.tuple_count);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = algorithm_name(info.param.algorithm);
  name += "_";
  switch (info.param.dist) {
    case DistKind::kUniform: name += "uniform"; break;
    case DistKind::kGaussian: name += "gaussian"; break;
    case DistKind::kZipf: name += "zipf"; break;
    case DistKind::kSmallDomain: name += "smalldomain"; break;
  }
  name += "_j" + std::to_string(info.param.initial_nodes);
  name += "_s" + std::to_string(info.param.sources);
  // gtest names must be alphanumeric.
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmByDistribution, ProtocolSweep,
    ::testing::Values(
        SweepParam{Algorithm::kSplit, DistKind::kUniform, 4, 2},
        SweepParam{Algorithm::kSplit, DistKind::kGaussian, 4, 2},
        SweepParam{Algorithm::kSplit, DistKind::kZipf, 4, 2},
        SweepParam{Algorithm::kSplit, DistKind::kSmallDomain, 4, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kUniform, 4, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kGaussian, 4, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kZipf, 4, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kSmallDomain, 4, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kUniform, 4, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kGaussian, 4, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kZipf, 4, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kSmallDomain, 4, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kUniform, 4, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kGaussian, 4, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kZipf, 4, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kSmallDomain, 4, 2}),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    InitialNodeSweep, ProtocolSweep,
    ::testing::Values(
        SweepParam{Algorithm::kSplit, DistKind::kSmallDomain, 1, 2},
        SweepParam{Algorithm::kSplit, DistKind::kSmallDomain, 2, 2},
        SweepParam{Algorithm::kSplit, DistKind::kSmallDomain, 8, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kSmallDomain, 1, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kSmallDomain, 2, 2},
        SweepParam{Algorithm::kReplicate, DistKind::kSmallDomain, 8, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kSmallDomain, 1, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kSmallDomain, 2, 2},
        SweepParam{Algorithm::kHybrid, DistKind::kSmallDomain, 8, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kSmallDomain, 1, 2},
        SweepParam{Algorithm::kOutOfCore, DistKind::kSmallDomain, 8, 2}),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    SourceCountSweep, ProtocolSweep,
    ::testing::Values(
        SweepParam{Algorithm::kSplit, DistKind::kUniform, 4, 1},
        SweepParam{Algorithm::kSplit, DistKind::kUniform, 4, 6},
        SweepParam{Algorithm::kReplicate, DistKind::kUniform, 4, 1},
        SweepParam{Algorithm::kReplicate, DistKind::kUniform, 4, 6},
        SweepParam{Algorithm::kHybrid, DistKind::kUniform, 4, 1},
        SweepParam{Algorithm::kHybrid, DistKind::kUniform, 4, 6}),
    sweep_name);

// ----------------------------------------------------- chunk-size property

class ChunkSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkSizeSweep, ResultIndependentOfChunkSize) {
  SweepParam p{Algorithm::kHybrid, DistKind::kSmallDomain, 3, 2};
  auto config = sweep_config(p);
  config.chunk_tuples = GetParam();
  const RunResult run = run_ehja(config);
  // The oracle ignores chunking entirely.
  EXPECT_EQ(run.join(), reference_join(config));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeSweep,
                         ::testing::Values(1u, 7u, 100u, 1000u, 50000u));

// --------------------------------------------------- split variant sweep

struct VariantParam {
  SplitVariant variant;
  DistKind dist;
};

class SplitVariantSweep : public ::testing::TestWithParam<VariantParam> {};

TEST_P(SplitVariantSweep, BothVariantsMatchOracle) {
  SweepParam p{Algorithm::kSplit, GetParam().dist, 4, 2};
  auto config = sweep_config(p);
  config.split_variant = GetParam().variant;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SplitVariantSweep,
    ::testing::Values(
        VariantParam{SplitVariant::kRequesterMidpoint, DistKind::kUniform},
        VariantParam{SplitVariant::kRequesterMidpoint, DistKind::kGaussian},
        VariantParam{SplitVariant::kLinearPointer, DistKind::kUniform},
        VariantParam{SplitVariant::kLinearPointer, DistKind::kGaussian},
        VariantParam{SplitVariant::kLinearPointer, DistKind::kSmallDomain}),
    [](const ::testing::TestParamInfo<VariantParam>& info) {
      std::string name =
          info.param.variant == SplitVariant::kRequesterMidpoint
              ? "requester"
              : "pointer";
      switch (info.param.dist) {
        case DistKind::kUniform: name += "_uniform"; break;
        case DistKind::kGaussian: name += "_gaussian"; break;
        case DistKind::kZipf: name += "_zipf"; break;
        case DistKind::kSmallDomain: name += "_smalldomain"; break;
      }
      return name;
    });

TEST(SplitVariantTest, PointerVariantKeepsLitwinInvariant) {
  // The pointer variant must keep at most two bucket widths live; the
  // easiest observable: the final partition map's ranges take at most two
  // distinct widths (modulo the +-1 of integer boundaries) under uniform
  // load.  We check via expansion metrics: runs complete and stay correct;
  // the LinearHashMap unit tests cover the width invariant directly.
  SweepParam p{Algorithm::kSplit, DistKind::kUniform, 2, 2};
  auto config = sweep_config(p);
  config.split_variant = SplitVariant::kLinearPointer;
  const RunResult run = run_ehja(config);
  EXPECT_GT(run.metrics.expansions, 0u);
  EXPECT_EQ(run.join(), reference_join(config));
}

// ------------------------------------------------------ seed determinism

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EverySeedMatchesItsOracle) {
  SweepParam p{Algorithm::kSplit, DistKind::kSmallDomain, 2, 3};
  auto config = sweep_config(p);
  config.seed = GetParam();
  EXPECT_EQ(run_ehja(config).join(), reference_join(config));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 42u, 1234567u, 0xdeadbeefu));

// ------------------------------------------------- pipeline invariants

// Three invariants over materialized multi-way pipelines, swept across
// (algorithm x stage count): the final cardinality equals the serial
// oracle's count; peak node usage never exceeds the shared global budget;
// and each stage's output checksum equals the next stage's build-input
// checksum (nothing is lost or invented at a hand-off).

struct PipelineParam {
  Algorithm algorithm;
  std::size_t stages;
};

PipelinePlan property_plan(const PipelineParam& p) {
  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 5'000, Schema{100},
                                  DistributionSpec::SmallDomain(1536),
                                  nullptr};
  plan.intermediate_tuple_bytes = 200;
  plan.join_pool_nodes = 10;
  plan.data_sources = 2;
  plan.chunk_tuples = 500;
  plan.node_hash_memory_bytes = 1200 * tuple_footprint(Schema{200});
  for (std::size_t k = 0; k < p.stages; ++k) {
    PipelineStage stage;
    stage.probe = RelationSpec{RelTag::kS, 6'000, Schema{100},
                               DistributionSpec::SmallDomain(1536), nullptr};
    stage.algorithm = p.algorithm;
    stage.initial_join_nodes = 2;
    stage.link_dist = DistributionSpec::SmallDomain(2048);
    plan.stages.push_back(stage);
  }
  return plan;
}

class PipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineSweep, FinalCardinalityEqualsOracleCount) {
  const auto plan = property_plan(GetParam());
  const PipelineResult pipeline = run_pipeline(plan);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final.matches, oracle.final.matches);
  EXPECT_EQ(pipeline.final_rows.size(), oracle.final.matches);
}

TEST_P(PipelineSweep, PeakNodeUsageNeverExceedsGlobalBudget) {
  const auto plan = property_plan(GetParam());
  const PipelineResult pipeline = run_pipeline(plan);
  EXPECT_LE(pipeline.peak_join_nodes, plan.join_pool_nodes);
  for (std::size_t k = 0; k < pipeline.stages.size(); ++k) {
    const StageResult& stage = pipeline.stages[k];
    EXPECT_LE(stage.peak_join_nodes, plan.join_pool_nodes) << "stage " << k;
    if (stage.executed) {
      EXPECT_LE(stage.run.metrics.final_join_nodes, plan.join_pool_nodes)
          << "stage " << k;
    }
  }
}

TEST_P(PipelineSweep, HandoffChecksumsChain) {
  const auto plan = property_plan(GetParam());
  const PipelineResult pipeline = run_pipeline(plan);
  for (std::size_t k = 1; k < pipeline.stages.size(); ++k) {
    EXPECT_EQ(pipeline.stages[k].build_input_checksum,
              pipeline.stages[k - 1].output_checksum)
        << "stage " << k;
    if (pipeline.stages[k].executed) {
      EXPECT_EQ(pipeline.stages[k].run.metrics.build_tuples_total,
                pipeline.stages[k - 1].output_rows)
          << "stage " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmByDepth, PipelineSweep,
    ::testing::Values(PipelineParam{Algorithm::kSplit, 3},
                      PipelineParam{Algorithm::kReplicate, 3},
                      PipelineParam{Algorithm::kHybrid, 2},
                      PipelineParam{Algorithm::kHybrid, 3},
                      PipelineParam{Algorithm::kHybrid, 4},
                      PipelineParam{Algorithm::kOutOfCore, 3},
                      PipelineParam{Algorithm::kAdaptive, 3}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      std::string name = algorithm_name(info.param.algorithm);
      name += "_d" + std::to_string(info.param.stages);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ehja
