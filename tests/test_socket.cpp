// SocketRuntime integration tests (ctest label: socket).
//
// Every test here runs the join across *real processes*: the coordinator
// (this test binary) forks one worker per non-coordinator node, re-executing
// itself in worker mode -- which is why this file has a custom main() that
// dispatches to maybe_run_socket_worker() before gtest ever sees argv.
//
// The gold standard is the same as the sim suites': run_ehja() must produce
// exactly reference_join(config), now with the answer assembled from tuples
// that crossed genuine TCP connections.  The per-pair FIFO contract needs no
// dedicated pass/fail probe beyond the unit test below: every kActorMsg
// frame a SocketRuntime/SocketWorkerRuntime receives is EHJA_CHECKed against
// the per-connection sequence counter (fifo_accept), so any violation aborts
// the worker, the coordinator sees an unexpected exit, and the test fails.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/driver.hpp"
#include "runtime/socket_runtime.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

// Mirrors tests/test_recovery.cpp's chaos_config: small enough that a full
// cross-process run takes seconds, with a memory budget tight enough
// (~4000 of 30000 build tuples per node) that every algorithm actually
// expands -- so splits, replicas, handoffs and map updates all cross
// process boundaries, not just data chunks.
EhjaConfig socket_config(Algorithm algorithm) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = 3;
  config.join_pool_nodes = 6;
  config.data_sources = 2;
  config.build_rel.tuple_count = 30'000;
  config.probe_rel.tuple_count = 30'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(2048);
  config.probe_rel.dist = DistributionSpec::SmallDomain(2048);
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  config.node_hash_memory_bytes =
      4000 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 64;
  return config;
}

std::string algo_test_name(const ::testing::TestParamInfo<Algorithm>& info) {
  std::string n = algorithm_name(info.param);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

// ---------------------------------------------------------------------------
// The FIFO acceptance predicate both runtimes check on every received frame.

TEST(FifoAccept, AcceptsExactlyTheNextSequence) {
  std::uint64_t expected = 0;
  EXPECT_TRUE(fifo_accept(expected, 0));
  EXPECT_TRUE(fifo_accept(expected, 1));
  EXPECT_TRUE(fifo_accept(expected, 2));
  EXPECT_EQ(expected, 3u);
  // A gap (drop) and a replay (duplicate/reorder) must both be rejected
  // without advancing the window.
  EXPECT_FALSE(fifo_accept(expected, 5));
  EXPECT_FALSE(fifo_accept(expected, 2));
  EXPECT_EQ(expected, 3u);
  EXPECT_TRUE(fifo_accept(expected, 3));
}

// ---------------------------------------------------------------------------
// Oracle equality, one real multi-process run per algorithm.  The checksum
// is an order-independent fold over every emitted match, so agreement with
// the serial oracle means no tuple was lost, duplicated or mis-joined on
// its way through the socket mesh.

class SocketOracleSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SocketOracleSuite, MatchesSerialOracleAcrossProcesses) {
  const EhjaConfig config = socket_config(GetParam());
  const RunResult run = run_ehja(config, RuntimeKind::kSocket);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
  EXPECT_EQ(run.metrics.failures_injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SocketOracleSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid,
                                           Algorithm::kOutOfCore,
                                           Algorithm::kAdaptive),
                         algo_test_name);

// ---------------------------------------------------------------------------
// Fail-stop recovery with a real SIGKILL.  The chunk-triggered kill fires
// inside the victim worker process (raise(SIGKILL) as its 10th data chunk
// arrives), the launcher reaps the corpse, the scheduler's heartbeat
// detector notices the silence, and the PR-2 recovery protocol -- failover,
// epoch fences, source replay -- must reassemble the exact oracle answer.
// Heartbeat timings are *wall-clock* seconds here, unlike the sim suite's
// virtual ones, so the timeout is kept large enough to never false-trigger
// on a loaded CI machine yet small enough to keep the test quick.

TEST(SocketRecovery, SigkillMidBuildStillMatchesOracle) {
  EhjaConfig config = socket_config(Algorithm::kHybrid);
  KillSpec kill;
  kill.pool_index = 1;
  kill.after_chunks = 10;
  config.faults.kills.push_back(kill);
  config.ft.heartbeat_interval_sec = 0.05;
  config.ft.heartbeat_timeout_sec = 1.0;

  const RunResult run = run_ehja(config, RuntimeKind::kSocket);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_EQ(run.metrics.failures_detected, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_GT(run.metrics.detection_latency_total, 0.0);
  EXPECT_GT(run.metrics.recovery_time_total, 0.0);
  EXPECT_GT(run.metrics.replayed_build_tuples, 0u);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

// ---------------------------------------------------------------------------
// Data-source SIGKILL: the victim is a *source* worker process, so an entire
// input slice vanishes mid-stream.  Recovery must reassign the slice to a
// fresh source (same deterministic TupleStream index) and wipe-replay, again
// to oracle equality over real sockets.  Scheduler kills are exercised only
// in the sim suite: under the socket runtime the coordinator process hosts
// the driver itself, so killing it would take the test down with it (the
// driver rejects such specs; the standby shares the coordinator process).

TEST(SocketRecovery, SigkillSourceMidBuildStillMatchesOracle) {
  EhjaConfig config = socket_config(Algorithm::kSplit);
  KillSpec kill;
  kill.role = KillRole::kSource;
  kill.pool_index = 1;
  kill.after_chunks = 10;
  config.faults.kills.push_back(kill);
  config.ft.heartbeat_interval_sec = 0.05;
  config.ft.heartbeat_timeout_sec = 1.0;

  const RunResult run = run_ehja(config, RuntimeKind::kSocket);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.failures_injected, 1u);
  EXPECT_EQ(run.metrics.failures_detected, 1u);
  EXPECT_EQ(run.metrics.source_failures, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_GT(run.metrics.detection_latency_total, 0.0);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

TEST(SocketRecovery, SigkillSourceMidProbeStillMatchesOracle) {
  EhjaConfig config = socket_config(Algorithm::kReplicate);
  KillSpec kill;
  kill.role = KillRole::kSource;
  kill.pool_index = 0;
  kill.after_chunks = 40;  // 30 build chunks per source: the 10th probe chunk
  config.faults.kills.push_back(kill);
  config.ft.heartbeat_interval_sec = 0.05;
  config.ft.heartbeat_timeout_sec = 1.0;

  const RunResult run = run_ehja(config, RuntimeKind::kSocket);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.source_failures, 1u);
  EXPECT_GE(run.metrics.recoveries, 1u);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

// Fuzzed kill points across the killable roles.  Four real multi-process
// runs keeps the wall-clock cost of this test in the same ballpark as one
// oracle sweep; the sim-side fuzz (tests/test_recovery.cpp) covers the same
// space far more densely, this one proves the machinery holds when the
// corpse is a genuine SIGKILLed process.
TEST(SocketChaosFuzz, FuzzedKillPointMatchesOracle) {
  SplitMix64 rng(20040607, /*stream=*/0x50c4e7);
  const Algorithm algos[] = {Algorithm::kHybrid, Algorithm::kOutOfCore,
                             Algorithm::kAdaptive, Algorithm::kSplit};
  for (int i = 0; i < 4; ++i) {
    EhjaConfig config = socket_config(algos[i]);
    config.ft.heartbeat_interval_sec = 0.05;
    config.ft.heartbeat_timeout_sec = 1.0;
    KillSpec kill;
    if (i % 2 == 0) {
      kill.role = KillRole::kJoin;
      kill.pool_index = static_cast<std::uint32_t>(rng.next_below(3));
      kill.after_chunks = 1 + rng.next_below(90);
    } else {
      kill.role = KillRole::kSource;
      kill.pool_index = static_cast<std::uint32_t>(rng.next_below(2));
      kill.after_chunks = 1 + rng.next_below(60);
    }
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " +
                 std::string(algorithm_name(config.algorithm)) + ", kill " +
                 (kill.role == KillRole::kJoin ? "join[" : "source[") +
                 std::to_string(kill.pool_index) + "] after chunk " +
                 std::to_string(kill.after_chunks));
    config.faults.kills.push_back(kill);
    const RunResult run = run_ehja(config, RuntimeKind::kSocket);
    EXPECT_EQ(run.join(), reference_join(config));
    EXPECT_EQ(run.metrics.failures_detected - run.metrics.false_positive_deaths,
              run.metrics.failures_injected);
  }
}

}  // namespace
}  // namespace ehja

// Custom main: a forked worker re-executes this binary with
// --ehja-worker=N --ehja-coordinator-port=P; it must become a runtime
// worker, not a gtest run.  Plain gtest invocations (including
// --gtest_list_tests discovery) fall through untouched.
int main(int argc, char** argv) {
  if (const auto worker_exit = ehja::maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
