// Protocol-level unit tests for SchedulerActor via the actor harness:
// bootstrap, expansion serialization (the barrier), pool exhaustion,
// drain-round stability rules, reshuffle orchestration, final aggregation.
#include <gtest/gtest.h>

#include <memory>

#include "actor_harness.hpp"
#include "core/scheduler.hpp"

namespace ehja {
namespace {

struct Fixture {
  std::shared_ptr<EhjaConfig> config = std::make_shared<EhjaConfig>();
  std::unique_ptr<HarnessRuntime> rt;
  SchedulerActor* scheduler = nullptr;
  ActorId sched_id = kInvalidActor;
  std::vector<ActorId> sources;
  std::vector<ActorId> joins;
  std::vector<NodeId> spawned_join_nodes;

  struct Null final : Actor {
    void on_message(const Message&) override {}
  };

  explicit Fixture(Algorithm algorithm, std::uint32_t initial = 2,
                   std::uint32_t pool = 6) {
    config->algorithm = algorithm;
    config->initial_join_nodes = initial;
    config->join_pool_nodes = pool;
    config->data_sources = 2;
    config->reshuffle_bins = 64;
    rt = std::make_unique<HarnessRuntime>(make_cluster(*config));

    auto spawn_join = [this](NodeId node) {
      spawned_join_nodes.push_back(node);
      return rt->spawn(node, std::make_unique<Null>());
    };
    auto sched = std::make_unique<SchedulerActor>(config, spawn_join);
    scheduler = sched.get();
    sched_id = rt->spawn(config->scheduler_node(), std::move(sched));
    for (std::uint32_t i = 0; i < config->data_sources; ++i) {
      sources.push_back(
          rt->spawn(config->source_node(i), std::make_unique<Null>()));
    }
    for (std::uint32_t j = 0; j < initial; ++j) {
      joins.push_back(
          rt->spawn(config->pool_node(j), std::make_unique<Null>()));
    }
    std::vector<NodeId> potential;
    for (std::uint32_t j = initial; j < pool; ++j) {
      potential.push_back(config->pool_node(j));
    }
    scheduler->wire(sources, joins,
                    ResourcePool(rt->cluster(), potential,
                                 config->pick_policy));
    rt->start(sched_id);
  }

  void memory_full(ActorId from) {
    MemoryFullPayload payload;
    payload.footprint_bytes = 2 * config->node_hash_memory_bytes;
    payload.budget_bytes = config->node_hash_memory_bytes;
    rt->deliver_from(from, sched_id,
                     make_message(Tag::kMemoryFull, payload, 48));
  }

  void op_complete(std::uint64_t op_id) {
    OpCompletePayload payload;
    payload.op_id = op_id;
    rt->deliver_from(joins.back(), sched_id,
                     make_message(Tag::kOpComplete, payload, 48));
  }
};

TEST(SchedulerTest, BootstrapSendsInitsAndStartBuild) {
  Fixture fx(Algorithm::kHybrid);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kJoinInit).size(), 2u);
  const auto starts = fx.rt->sent_with_tag(Tag::kStartBuild);
  ASSERT_EQ(starts.size(), 2u);
  // The initial map covers the space with one entry per initial node.
  const auto& map = starts[0].msg.as<StartBuildPayload>().map;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.entries()[0].active_owner(), fx.joins[0]);
}

TEST(SchedulerTest, ExpansionSpawnsInitsAndBroadcasts) {
  Fixture fx(Algorithm::kReplicate);
  fx.rt->outbox().clear();
  fx.memory_full(fx.joins[0]);
  // One fresh join spawned on a pool node.
  ASSERT_EQ(fx.spawned_join_nodes.size(), 1u);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kJoinInit).size(), 1u);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kHandoffStart).size(), 1u);
  // Sources told about the new owner.
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kMapUpdate).size(), 2u);
  const auto& update =
      fx.rt->sent_with_tag(Tag::kMapUpdate)[0].msg.as<MapUpdatePayload>();
  EXPECT_EQ(update.map.entries()[0].owners.size(), 2u);
}

TEST(SchedulerTest, BarrierSerializesExpansions) {
  Fixture fx(Algorithm::kReplicate);
  fx.rt->outbox().clear();
  fx.memory_full(fx.joins[0]);
  fx.memory_full(fx.joins[1]);  // queued behind the in-flight op
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kHandoffStart).size(), 1u);
  // Completing op 1 releases the barrier and starts op 2.
  fx.op_complete(1);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kHandoffStart).size(), 2u);
  // The first requester got its relief.
  const auto reliefs = fx.rt->sent_with_tag(Tag::kRelief);
  ASSERT_EQ(reliefs.size(), 1u);
  EXPECT_EQ(reliefs[0].to, fx.joins[0]);
}

TEST(SchedulerTest, DuplicateRequestsDeduplicated) {
  Fixture fx(Algorithm::kReplicate);
  fx.rt->outbox().clear();
  fx.memory_full(fx.joins[0]);
  fx.memory_full(fx.joins[0]);  // same node again while queued: dropped
  fx.op_complete(1);
  // Only the one op for join 0; no second handoff for the duplicate.
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kHandoffStart).size(), 1u);
}

TEST(SchedulerTest, PoolExhaustionSwitchesRequestersToSpill) {
  Fixture fx(Algorithm::kReplicate, /*initial=*/2, /*pool=*/3);
  fx.rt->outbox().clear();
  fx.memory_full(fx.joins[0]);  // takes the only potential node
  fx.op_complete(1);
  fx.memory_full(fx.joins[1]);  // nothing left
  const auto spills = fx.rt->sent_with_tag(Tag::kSwitchToSpill);
  ASSERT_EQ(spills.size(), 1u);
  EXPECT_EQ(spills[0].to, fx.joins[1]);
  // Later requests short-circuit straight to spill.
  fx.memory_full(fx.joins[0]);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kSwitchToSpill).size(), 2u);
}

TEST(SchedulerTest, SplitTargetsRequesterRangeByDefault) {
  Fixture fx(Algorithm::kSplit);
  fx.rt->outbox().clear();
  fx.memory_full(fx.joins[1]);  // owner of the UPPER half
  const auto reqs = fx.rt->sent_with_tag(Tag::kSplitRequest);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].to, fx.joins[1]);
  const auto& req = reqs[0].msg.as<SplitRequestPayload>();
  // The requester's range [H/2, H) halves at 3H/4.
  EXPECT_EQ(req.moved.lo, kPositionCount / 2 + kPositionCount / 4);
  EXPECT_EQ(req.moved.hi, kPositionCount);
}

TEST(SchedulerTest, PointerVariantSplitsAtThePointer) {
  // Dedicated fixture whose config selects the Litwin pointer variant
  // before the scheduler starts.
  std::shared_ptr<EhjaConfig> config = std::make_shared<EhjaConfig>();
  config->algorithm = Algorithm::kSplit;
  config->split_variant = SplitVariant::kLinearPointer;
  config->initial_join_nodes = 2;
  config->join_pool_nodes = 6;
  config->data_sources = 1;
  HarnessRuntime rt(make_cluster(*config));
  struct Null final : Actor {
    void on_message(const Message&) override {}
  };
  std::vector<ActorId> joins;
  auto spawn_join = [&rt](NodeId node) {
    return rt.spawn(node, std::make_unique<Null>());
  };
  auto sched = std::make_unique<SchedulerActor>(config, spawn_join);
  SchedulerActor* scheduler = sched.get();
  const ActorId sched_id = rt.spawn(0, std::move(sched));
  const ActorId source = rt.spawn(config->source_node(0),
                                  std::make_unique<Null>());
  joins.push_back(rt.spawn(config->pool_node(0), std::make_unique<Null>()));
  joins.push_back(rt.spawn(config->pool_node(1), std::make_unique<Null>()));
  std::vector<NodeId> potential;
  for (std::uint32_t j = 2; j < 6; ++j) potential.push_back(config->pool_node(j));
  scheduler->wire({source}, joins,
                  ResourcePool(rt.cluster(), potential, config->pick_policy));
  rt.start(sched_id);
  rt.outbox().clear();

  MemoryFullPayload full;
  full.footprint_bytes = 2;
  full.budget_bytes = 1;
  Message msg = make_message(Tag::kMemoryFull, full, 48);
  msg.from = joins[1];  // the UPPER-half owner overflows...
  rt.actor(sched_id).on_message(msg);
  const auto reqs = rt.sent_with_tag(Tag::kSplitRequest);
  ASSERT_EQ(reqs.size(), 1u);
  // ...but the split goes to the bucket at the pointer: bucket 0.
  EXPECT_EQ(reqs[0].to, joins[0]);
  const auto& req = reqs[0].msg.as<SplitRequestPayload>();
  EXPECT_EQ(req.moved.lo, kPositionCount / 4);
  EXPECT_EQ(req.moved.hi, kPositionCount / 2);
}

TEST(SchedulerTest, DrainRequiresTwoStableRounds) {
  Fixture fx(Algorithm::kOutOfCore);
  fx.rt->outbox().clear();
  // Both sources finish the build with 3 chunks each.
  for (ActorId source : fx.sources) {
    SourceDonePayload done;
    done.rel = RelTag::kR;
    done.chunks_sent = 3;
    done.tuples_sent = 300;
    fx.rt->deliver_from(source, fx.sched_id,
                        make_message(Tag::kSourceDone, done, 48));
  }
  // Round 1 begins.
  auto probes = fx.rt->sent_with_tag(Tag::kDrainProbe);
  ASSERT_EQ(probes.size(), 2u);
  const std::uint64_t epoch1 =
      probes[0].msg.as<DrainProbePayload>().epoch;
  fx.rt->outbox().clear();
  auto ack = [&](ActorId join, std::uint64_t epoch, std::uint64_t received) {
    DrainAckPayload payload;
    payload.epoch = epoch;
    payload.data_chunks_received = received;
    payload.data_chunks_forwarded = 0;
    fx.rt->deliver_from(join, fx.sched_id,
                        make_message(Tag::kDrainAck, payload, 48));
  };
  // Balanced totals (6 == 3+3) but FIRST matching round: must re-probe,
  // not complete.
  ack(fx.joins[0], epoch1, 3);
  ack(fx.joins[1], epoch1, 3);
  auto probes2 = fx.rt->sent_with_tag(Tag::kDrainProbe);
  ASSERT_EQ(probes2.size(), 2u);
  EXPECT_TRUE(fx.rt->sent_with_tag(Tag::kStartProbe).empty());
  const std::uint64_t epoch2 = probes2[0].msg.as<DrainProbePayload>().epoch;
  EXPECT_EQ(epoch2, epoch1 + 1);
  fx.rt->outbox().clear();
  // Second identical round: drained; the probe phase starts.
  ack(fx.joins[0], epoch2, 3);
  ack(fx.joins[1], epoch2, 3);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kStartProbe).size(), 2u);
}

TEST(SchedulerTest, UnbalancedDrainKeepsPolling) {
  Fixture fx(Algorithm::kOutOfCore);
  fx.rt->outbox().clear();
  for (ActorId source : fx.sources) {
    SourceDonePayload done;
    done.rel = RelTag::kR;
    done.chunks_sent = 5;
    done.tuples_sent = 500;
    fx.rt->deliver_from(source, fx.sched_id,
                        make_message(Tag::kSourceDone, done, 48));
  }
  for (int round = 0; round < 4; ++round) {
    const auto probes = fx.rt->sent_with_tag(Tag::kDrainProbe);
    ASSERT_EQ(probes.size(), 2u);
    const std::uint64_t epoch =
        probes[0].msg.as<DrainProbePayload>().epoch;
    fx.rt->outbox().clear();
    DrainAckPayload payload;
    payload.epoch = epoch;
    payload.data_chunks_received = 4;  // 8 != 10: a chunk is in flight
    payload.data_chunks_forwarded = 0;
    for (ActorId join : fx.joins) {
      fx.rt->deliver_from(join, fx.sched_id,
                          make_message(Tag::kDrainAck, payload, 48));
    }
    EXPECT_TRUE(fx.rt->sent_with_tag(Tag::kStartProbe).empty());
  }
}

TEST(SchedulerTest, StaleDrainAcksIgnored) {
  Fixture fx(Algorithm::kOutOfCore);
  fx.rt->outbox().clear();
  for (ActorId source : fx.sources) {
    SourceDonePayload done;
    done.rel = RelTag::kR;
    done.chunks_sent = 1;
    done.tuples_sent = 100;
    fx.rt->deliver_from(source, fx.sched_id,
                        make_message(Tag::kSourceDone, done, 48));
  }
  const auto probes = fx.rt->sent_with_tag(Tag::kDrainProbe);
  const std::uint64_t epoch = probes[0].msg.as<DrainProbePayload>().epoch;
  DrainAckPayload stale;
  stale.epoch = epoch - 1;
  stale.data_chunks_received = 1;
  for (ActorId join : fx.joins) {
    fx.rt->deliver_from(join, fx.sched_id,
                        make_message(Tag::kDrainAck, stale, 48));
    fx.rt->deliver_from(join, fx.sched_id,
                        make_message(Tag::kDrainAck, stale, 48));
  }
  // Stale epoch: no new round triggered, no completion.
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kDrainProbe).size(), 2u);
  EXPECT_TRUE(fx.rt->sent_with_tag(Tag::kStartProbe).empty());
}

}  // namespace
}  // namespace ehja
