// Unit tests for workload generation: distribution shapes, stream
// determinism, slice partitioning, multi-source equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "hash/hash_family.hpp"
#include "workload/distribution.hpp"
#include "workload/generator.hpp"

namespace ehja {
namespace {

TEST(DistributionTest, KeyFromUnitIsMonotone) {
  EXPECT_LT(key_from_unit(0.1), key_from_unit(0.2));
  EXPECT_LT(key_from_unit(0.5), key_from_unit(0.500001));
  EXPECT_EQ(key_from_unit(0.0), 0u);
}

TEST(DistributionTest, UniformCoversPositionSpace) {
  SplitMix64 rng(1);
  const auto spec = DistributionSpec::Uniform();
  std::vector<std::uint64_t> counts(16, 0);
  for (int i = 0; i < 160000; ++i) {
    const std::uint64_t pos = position_of(sample_key(spec, rng));
    ++counts[pos * 16 / kPositionCount];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0);
  }
}

TEST(DistributionTest, GaussianConcentratesAroundMean) {
  SplitMix64 rng(2);
  const auto spec = DistributionSpec::Gaussian(0.5, 1e-4);
  // With sigma 1e-4, >99.99% of keys fall within 4 sigma of the mean.
  const std::uint64_t lo = key_from_unit(0.5 - 4e-4);
  const std::uint64_t hi = key_from_unit(0.5 + 4e-4);
  int inside = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = sample_key(spec, rng);
    inside += (key >= lo && key <= hi) ? 1 : 0;
  }
  EXPECT_GT(inside, 9990);
}

TEST(DistributionTest, GaussianSigmaOrdersSpread) {
  // Wider sigma must occupy more distinct position-space buckets.
  auto buckets_hit = [](double sigma) {
    SplitMix64 rng(3);
    const auto spec = DistributionSpec::Gaussian(0.5, sigma);
    std::map<std::uint64_t, int> hit;
    for (int i = 0; i < 20000; ++i) {
      ++hit[position_of(sample_key(spec, rng))];
    }
    return hit.size();
  };
  EXPECT_GT(buckets_hit(1e-2), buckets_hit(1e-3));
  EXPECT_GT(buckets_hit(1e-3), buckets_hit(1e-4));
}

TEST(DistributionTest, ZipfRankOneDominates) {
  SplitMix64 rng(4);
  const auto spec = DistributionSpec::Zipf(1.2, 1000);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 50000; ++i) {
    ++freq[sample_key(spec, rng)];
  }
  int top = 0;
  for (const auto& [key, count] : freq) top = std::max(top, count);
  // Rank 1 of Zipf(1.2) over 1000 values holds a large share.
  EXPECT_GT(top, 50000 / 10);
  // And there are many distinct values overall.
  EXPECT_GT(freq.size(), 100u);
}

TEST(DistributionTest, SmallDomainProducesExactDuplicates) {
  SplitMix64 rng(5);
  const auto spec = DistributionSpec::SmallDomain(8);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 800; ++i) ++freq[sample_key(spec, rng)];
  EXPECT_EQ(freq.size(), 8u);
}

TEST(DistributionTest, ToStringNamesKind) {
  EXPECT_EQ(DistributionSpec::Uniform().to_string(), "uniform");
  EXPECT_NE(DistributionSpec::Gaussian(0.5, 0.001).to_string().find("sigma"),
            std::string::npos);
}

// ---------------------------------------------------------------- generator

RelationSpec small_spec(std::uint64_t count = 1000) {
  RelationSpec spec;
  spec.tag = RelTag::kR;
  spec.tuple_count = count;
  spec.schema = Schema{100};
  spec.dist = DistributionSpec::Uniform();
  return spec;
}

TEST(GeneratorTest, SlicesPartitionIdSpace) {
  const auto spec = small_spec(1003);
  std::vector<std::uint64_t> seen;
  for (std::uint32_t s = 0; s < 4; ++s) {
    TupleStream stream(spec, 9, s, 4);
    Tuple t;
    while (stream.next(t)) seen.push_back(t.id);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 1003u);
  for (std::uint64_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(GeneratorTest, StreamsAreDeterministic) {
  const auto spec = small_spec();
  TupleStream a(spec, 9, 1, 4), b(spec, 9, 1, 4);
  Tuple ta, tb;
  while (a.next(ta)) {
    ASSERT_TRUE(b.next(tb));
    EXPECT_EQ(ta.id, tb.id);
    EXPECT_EQ(ta.key, tb.key);
  }
  EXPECT_FALSE(b.next(tb));
}

TEST(GeneratorTest, RelationsRAndSDiffer) {
  auto r_spec = small_spec();
  auto s_spec = small_spec();
  s_spec.tag = RelTag::kS;
  const Relation r = materialize(r_spec, 9, 2);
  const Relation s = materialize(s_spec, 9, 2);
  int same = 0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    same += r[i].key == s[i].key ? 1 : 0;
  }
  EXPECT_LT(same, 5);  // independent streams
}

TEST(GeneratorTest, MaterializeMatchesStreamUnionRegardlessOfSourceCount) {
  // The multiset of keys depends on the source count (different streams),
  // but for a FIXED source count materialize() must equal the streamed
  // union -- that is the property the distributed tests rely on.
  const auto spec = small_spec(500);
  const Relation whole = materialize(spec, 77, 3);
  std::vector<Tuple> streamed;
  for (std::uint32_t s = 0; s < 3; ++s) {
    TupleStream stream(spec, 77, s, 3);
    Tuple t;
    while (stream.next(t)) streamed.push_back(t);
  }
  ASSERT_EQ(whole.size(), streamed.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(whole[i].id, streamed[i].id);
    EXPECT_EQ(whole[i].key, streamed[i].key);
  }
}

TEST(GeneratorTest, ProducedAndRemainingCounts) {
  const auto spec = small_spec(100);
  TupleStream stream(spec, 1, 0, 1);
  EXPECT_EQ(stream.remaining(), 100u);
  Tuple t;
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(stream.next(t));
  EXPECT_EQ(stream.produced(), 40u);
  EXPECT_EQ(stream.remaining(), 60u);
}

TEST(GeneratorTest, StreamIdsDistinguishRelations) {
  EXPECT_NE(stream_id(RelTag::kR, 0), stream_id(RelTag::kS, 0));
  EXPECT_NE(stream_id(RelTag::kR, 0), stream_id(RelTag::kR, 1));
}

}  // namespace
}  // namespace ehja
