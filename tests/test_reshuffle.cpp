// Unit tests for the hybrid reshuffle planner.
#include <gtest/gtest.h>

#include <numeric>

#include "core/reshuffle.hpp"
#include "util/rng.hpp"

namespace ehja {
namespace {

BinnedHistogram uniform_hist(std::uint64_t lo, std::uint64_t hi,
                             std::size_t bins, std::uint64_t per_bin) {
  BinnedHistogram hist(lo, hi, bins);
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    hist.add(hist.bin_lo(b), per_bin);
  }
  return hist;
}

void expect_covers(const std::vector<PartitionMap::Entry>& plan,
                   std::uint64_t lo, std::uint64_t hi) {
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front().range.lo, lo);
  EXPECT_EQ(plan.back().range.hi, hi);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i - 1].range.hi, plan[i].range.lo);
    EXPECT_LT(plan[i].range.lo, plan[i].range.hi);
  }
}

TEST(ReshuffleTest, UniformLoadSplitsEvenly) {
  const auto hist = uniform_hist(0, 65536, 256, 100);
  const std::vector<ActorId> members = {5, 6, 7, 8};
  const auto plan = plan_reshuffle(hist, members);
  ASSERT_EQ(plan.size(), 4u);
  expect_covers(plan, 0, 65536);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(plan[i].owners.front(), members[i]);
    EXPECT_NEAR(static_cast<double>(plan[i].range.width()), 16384.0, 512.0);
  }
}

TEST(ReshuffleTest, SkewedLoadGivesHotBinOwnerNarrowRange) {
  BinnedHistogram hist(0, 65536, 256);
  // All weight in one bin near the middle.
  hist.add(32768, 100000);
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    hist.add(hist.bin_lo(b), 1);
  }
  const auto plan = plan_reshuffle(hist, {1, 2, 3, 4});
  expect_covers(plan, 0, 65536);
  // One member's range must contain the hot bin; its range should be far
  // narrower than an even split.
  bool hot_found = false;
  for (const auto& entry : plan) {
    if (entry.range.contains(32768)) {
      hot_found = true;
    }
  }
  EXPECT_TRUE(hot_found);
}

TEST(ReshuffleTest, EveryMemberGetsNonEmptyRangeUnderExtremeSkew) {
  BinnedHistogram hist(1000, 2000, 100);
  hist.add(1000, 999999);  // everything in the first bin
  const auto plan = plan_reshuffle(hist, {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_EQ(plan.size(), 8u);
  expect_covers(plan, 1000, 2000);
  for (const auto& entry : plan) {
    EXPECT_GE(entry.range.width(), 1u);
  }
}

TEST(ReshuffleTest, SingleMemberTakesWholeRange) {
  const auto hist = uniform_hist(500, 1500, 64, 3);
  const auto plan = plan_reshuffle(hist, {42});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].range, (PosRange{500, 1500}));
  EXPECT_EQ(plan[0].owners.front(), 42);
}

TEST(ReshuffleTest, EmptyHistogramStillCovers) {
  BinnedHistogram hist(0, 4096, 64);  // no weight at all
  const auto plan = plan_reshuffle(hist, {1, 2, 3});
  expect_covers(plan, 0, 4096);
}

TEST(ReshuffleTest, BalanceWithinGreedyBound) {
  SplitMix64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    BinnedHistogram hist(0, 1u << 16, 512);
    std::uint64_t total = 0, biggest = 0;
    for (std::size_t b = 0; b < hist.bin_count(); ++b) {
      const std::uint64_t w = rng.next_below(500);
      hist.add(hist.bin_lo(b), w);
      total += w;
      biggest = std::max(biggest, w);
    }
    const std::size_t k = 2 + rng.next_below(8);
    std::vector<ActorId> members(k);
    std::iota(members.begin(), members.end(), 1);
    const auto plan = plan_reshuffle(hist, members);
    // Recompute per-member weight from bins and check the greedy bound.
    for (const auto& entry : plan) {
      std::uint64_t w = 0;
      for (std::size_t b = 0; b < hist.bin_count(); ++b) {
        if (entry.range.contains(hist.bin_lo(b))) w += hist.bin_weight(b);
      }
      EXPECT_LE(static_cast<double>(w),
                static_cast<double>(total) / k + biggest + 1);
    }
  }
}

}  // namespace
}  // namespace ehja
