// Tests for the planner: skew estimation, the ss4.2.4 analytical model,
// and the paper's ss6 decision rule.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

// ---------------------------------------------------------- skew estimator

TEST(SkewEstimateTest, UniformReadsAsUniform) {
  const auto est = estimate_skew(DistributionSpec::Uniform(), 100'000, 1);
  EXPECT_LT(est.concentration, 1.5);
  EXPECT_FALSE(est.mildly_skewed());
  EXPECT_FALSE(est.highly_skewed());
  EXPECT_EQ(est.sampled, 100'000u);
}

TEST(SkewEstimateTest, ExtremeGaussianReadsAsHighlySkewed) {
  const auto est =
      estimate_skew(DistributionSpec::Gaussian(0.5, 1e-4), 50'000, 1);
  EXPECT_TRUE(est.highly_skewed());
  EXPECT_GT(est.concentration, 30.0);  // everything in ~one slice of 64
}

TEST(SkewEstimateTest, MildGaussianBetweenUniformAndExtreme) {
  const auto mild =
      estimate_skew(DistributionSpec::Gaussian(0.5, 5e-2), 50'000, 1);
  const auto extreme =
      estimate_skew(DistributionSpec::Gaussian(0.5, 1e-4), 50'000, 1);
  EXPECT_GT(mild.concentration, 1.5);
  EXPECT_LT(mild.concentration, extreme.concentration);
}

TEST(SkewEstimateTest, ErrorBoundShrinksWithSampleSize) {
  const auto small = estimate_skew(DistributionSpec::Uniform(), 1'000, 1);
  const auto large = estimate_skew(DistributionSpec::Uniform(), 100'000, 1);
  EXPECT_LT(large.error_bound, small.error_bound);
}

TEST(SkewEstimateTest, DeterministicForSeed) {
  const auto a = estimate_skew(DistributionSpec::Zipf(1.2, 1000), 10'000, 7);
  const auto b = estimate_skew(DistributionSpec::Zipf(1.2, 1000), 10'000, 7);
  EXPECT_DOUBLE_EQ(a.hot_fraction, b.hot_fraction);
}

// --------------------------------------------------------- ss4.2.4 model

TEST(ExpansionModelTest, NoExpansionNoOverhead) {
  ExpansionModel model;
  model.bucket_bytes = 1e8;
  model.initial_buckets = 4;
  model.final_buckets = 4;
  model.sec_per_byte = 1e-8;
  EXPECT_DOUBLE_EQ(model.expansion_factor(), 1.0);
  EXPECT_DOUBLE_EQ(model.split_overhead_sec(), 0.0);
  EXPECT_DOUBLE_EQ(model.reshuffle_overhead_sec(), 0.0);
}

TEST(ExpansionModelTest, SplitGrowsFasterThanReshuffle) {
  // The paper's point: O_split grows ~linearly in E while O_reshuffle
  // saturates, so their ratio grows with E.
  double prev_ratio = 0.0;
  for (const std::uint32_t final_buckets : {8u, 16u, 32u, 64u}) {
    ExpansionModel model;
    model.bucket_bytes = 1e8;
    model.initial_buckets = 4;
    model.final_buckets = final_buckets;
    model.sec_per_byte = 1e-8;
    const double ratio =
        model.split_overhead_sec() / model.reshuffle_overhead_sec();
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 1.0);  // split eventually costs more
}

TEST(ExpansionModelTest, ModelRatioIsHalfE) {
  // Analytically O_split/O_reshuffle = E/2 (for E >> 1 the -N0 term and
  // the (E-1)/E factor cancel to exactly E/2 at all E > 1).
  ExpansionModel model;
  model.bucket_bytes = 5e7;
  model.initial_buckets = 4;
  model.final_buckets = 24;
  model.sec_per_byte = 1e-8;
  const double e = model.expansion_factor();
  EXPECT_NEAR(model.split_overhead_sec() / model.reshuffle_overhead_sec(),
              e / 2.0, 1e-9);
}

TEST(ExpansionModelTest, FromConfigComputesNodesNeeded) {
  EhjaConfig config;
  config.initial_join_nodes = 4;
  config.join_pool_nodes = 24;
  config.build_rel.tuple_count = 10'000'000;
  config.node_hash_memory_bytes = 80 * kMiB;
  const auto model = model_from_config(config);
  EXPECT_EQ(model.initial_buckets, 4u);
  // 10M x 124 B needs ~15 nodes of 80 MiB.
  EXPECT_GE(model.final_buckets, 14u);
  EXPECT_LE(model.final_buckets, 16u);
}

TEST(ExpansionModelTest, FinalBucketsCappedByPool) {
  EhjaConfig config;
  config.initial_join_nodes = 2;
  config.join_pool_nodes = 6;
  config.build_rel.tuple_count = 100'000'000;
  config.node_hash_memory_bytes = 80 * kMiB;
  EXPECT_EQ(model_from_config(config).final_buckets, 6u);
}

// ------------------------------------------------------------ decision rule

EhjaConfig planner_config() {
  EhjaConfig config;
  config.initial_join_nodes = 4;
  config.join_pool_nodes = 24;
  config.build_rel.tuple_count = 10'000'000;
  config.probe_rel.tuple_count = 10'000'000;
  config.node_hash_memory_bytes = 80 * kMiB;
  return config;
}

TEST(PlannerTest, HighSkewPrefersReplication) {
  auto config = planner_config();
  config.build_rel.dist = DistributionSpec::Gaussian(0.5, 1e-4);
  PlannerInputs inputs;
  inputs.build_tuples = config.build_rel.tuple_count;
  inputs.probe_tuples = config.probe_rel.tuple_count;
  const auto decision = choose_algorithm(config, inputs);
  EXPECT_EQ(decision.algorithm, Algorithm::kReplicate);
  EXPECT_FALSE(decision.rationale.empty());
}

TEST(PlannerTest, LargerBuildPrefersReplication) {
  auto config = planner_config();
  config.build_rel.tuple_count = 100'000'000;
  config.probe_rel.tuple_count = 10'000'000;
  PlannerInputs inputs;
  inputs.build_tuples = config.build_rel.tuple_count;
  inputs.probe_tuples = config.probe_rel.tuple_count;
  const auto decision = choose_algorithm(config, inputs);
  EXPECT_EQ(decision.algorithm, Algorithm::kReplicate);
}

TEST(PlannerTest, UniformLargeExpansionPrefersHybrid) {
  auto config = planner_config();
  config.initial_join_nodes = 1;  // E ~ 15: reshuffle beats migration
  PlannerInputs inputs;
  inputs.build_tuples = config.build_rel.tuple_count;
  inputs.probe_tuples = config.probe_rel.tuple_count;
  const auto decision = choose_algorithm(config, inputs);
  EXPECT_EQ(decision.algorithm, Algorithm::kHybrid);
}

TEST(PlannerTest, NoOverflowPrefersPlainSplit) {
  auto config = planner_config();
  config.node_hash_memory_bytes = 2 * kGiB;  // everything fits
  PlannerInputs inputs;
  inputs.build_tuples = config.build_rel.tuple_count;
  inputs.probe_tuples = config.probe_rel.tuple_count;
  const auto decision = choose_algorithm(config, inputs);
  EXPECT_EQ(decision.algorithm, Algorithm::kSplit);
  EXPECT_NE(decision.rationale.find("fits"), std::string::npos);
}

TEST(PlannerTest, SmallExpansionUniformPrefersSplit) {
  auto config = planner_config();
  // E = 16/12 ~ 1.3: split's (N-N0) B/2 < reshuffle's (E-1)/E B N0.
  config.initial_join_nodes = 12;
  PlannerInputs inputs;
  inputs.build_tuples = config.build_rel.tuple_count;
  inputs.probe_tuples = config.probe_rel.tuple_count;
  const auto decision = choose_algorithm(config, inputs);
  EXPECT_EQ(decision.algorithm, Algorithm::kSplit);
}

}  // namespace
}  // namespace ehja
