// Unit tests for the hash module: position map, linear hashing invariants,
// partition maps, and the local hash table's accounting and range surgery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hash/hash_family.hpp"
#include "hash/local_hash_table.hpp"
#include "hash/partition_map.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"

namespace ehja {
namespace {

// ------------------------------------------------------------ position map

TEST(PositionTest, HighBitsPreserveOrder) {
  EXPECT_LE(position_of(key_from_unit(0.1)), position_of(key_from_unit(0.2)));
  EXPECT_EQ(position_of(0), 0u);
  EXPECT_EQ(position_of(UINT64_MAX), kPositionCount - 1);
}

TEST(EqualRangesTest, CoverAndDisjoint) {
  const auto ranges = equal_ranges(6, 1000);
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, 1000u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].hi, ranges[i].lo);
  }
}

// ----------------------------------------------------------- linear hashing

TEST(LinearHashMapTest, InitialState) {
  LinearHashMap lh(4, 1024);
  EXPECT_EQ(lh.bucket_count(), 4u);
  EXPECT_EQ(lh.level(), 0u);
  EXPECT_EQ(lh.split_ptr(), 0u);
  EXPECT_EQ(lh.bucket_range(0), (PosRange{0, 256}));
  EXPECT_EQ(lh.bucket_range(3), (PosRange{768, 1024}));
}

TEST(LinearHashMapTest, SplitsWalkThePointer) {
  LinearHashMap lh(4, 1024);
  // First split targets bucket 0 ([0,256)) regardless of who overflowed.
  auto s0 = lh.split_next();
  EXPECT_EQ(s0.kept, (PosRange{0, 128}));
  EXPECT_EQ(s0.moved, (PosRange{128, 256}));
  EXPECT_EQ(lh.split_ptr(), 1u);
  EXPECT_EQ(lh.bucket_count(), 5u);
  // Second split targets the original bucket 1 ([256,512)).
  auto s1 = lh.split_next();
  EXPECT_EQ(s1.kept, (PosRange{256, 384}));
  EXPECT_EQ(s1.moved, (PosRange{384, 512}));
}

TEST(LinearHashMapTest, LevelIncrementsWhenPointerWraps) {
  LinearHashMap lh(2, 1024);
  lh.split_next();  // splits [0,512)
  EXPECT_EQ(lh.level(), 0u);
  lh.split_next();  // splits [512,1024): pointer wraps
  EXPECT_EQ(lh.level(), 1u);
  EXPECT_EQ(lh.split_ptr(), 0u);
  EXPECT_EQ(lh.bucket_count(), 4u);
  // Next round re-splits the now-256-wide buckets left to right.
  auto s = lh.split_next();
  EXPECT_EQ(s.kept, (PosRange{0, 128}));
}

TEST(LinearHashMapTest, AtMostTwoBucketWidthsExist) {
  // The "at most two hash functions active" invariant: bucket widths take
  // at most two distinct values at any time.
  SplitMix64 rng(1);
  LinearHashMap lh(4, 1u << 16);
  for (int i = 0; i < 40; ++i) {
    lh.split_next();
    std::vector<std::uint64_t> widths;
    for (std::size_t b = 0; b < lh.bucket_count(); ++b) {
      widths.push_back(lh.bucket_range(b).width());
    }
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
    EXPECT_LE(widths.size(), 2u);
    if (widths.size() == 2) {
      EXPECT_EQ(widths[0] * 2, widths[1]);
    }
  }
}

TEST(LinearHashMapTest, BucketIndexOfAgreesWithRanges) {
  LinearHashMap lh(3, 10000);
  for (int i = 0; i < 10; ++i) lh.split_next();
  for (std::uint64_t pos = 0; pos < 10000; pos += 7) {
    const std::size_t idx = lh.bucket_index_of(pos);
    EXPECT_TRUE(lh.bucket_range(idx).contains(pos));
  }
}

TEST(LinearHashMapTest, BoundsStayCoveringAndSorted) {
  LinearHashMap lh(4);
  for (int i = 0; i < 30; ++i) lh.split_next();
  const auto& bounds = lh.bounds();
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), kPositionCount);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(LinearHashMapTest, SplitPossibleFalseAtPositionResolution) {
  LinearHashMap lh(2, 4);  // four positions, two buckets of width 2
  EXPECT_TRUE(lh.split_possible());
  lh.split_next();
  lh.split_next();
  // All buckets now width 1: nothing left to split.
  EXPECT_FALSE(lh.split_possible());
}

// ------------------------------------------------------------ partition map

TEST(PartitionMapTest, InitialEqualRanges) {
  const auto map = PartitionMap::initial({10, 11, 12, 13});
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.entry_for(0).active_owner(), 10);
  EXPECT_EQ(map.entry_for(kPositionCount - 1).active_owner(), 13);
  EXPECT_EQ(map.owner_slots(), 4u);
}

TEST(PartitionMapTest, SplitEntry) {
  auto map = PartitionMap::initial({10, 11});
  const std::uint64_t mid = kPositionCount / 4;
  map.split_entry(0, mid, 99);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.entry_for(mid - 1).active_owner(), 10);
  EXPECT_EQ(map.entry_for(mid).active_owner(), 99);
  map.check();
}

TEST(PartitionMapTest, AddReplicaMakesNewestActive) {
  auto map = PartitionMap::initial({10, 11});
  map.add_replica(1, 99);
  const auto& entry = map.entries()[1];
  EXPECT_EQ(entry.active_owner(), 99);
  ASSERT_EQ(entry.owners.size(), 2u);
  EXPECT_EQ(entry.owners[1], 11);
  EXPECT_EQ(map.owner_slots(), 3u);
}

TEST(PartitionMapTest, ReplaceEntrySubdivides) {
  auto map = PartitionMap::initial({10, 11});
  const PosRange original = map.entries()[0].range;
  const std::uint64_t third = original.lo + original.width() / 3;
  std::vector<PartitionMap::Entry> plan = {
      {PosRange{original.lo, third}, {20}},
      {PosRange{third, original.hi}, {21}},
  };
  map.replace_entry(0, plan);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.entry_for(original.lo).active_owner(), 20);
  EXPECT_EQ(map.entry_for(third).active_owner(), 21);
}

TEST(PartitionMapTest, IndexForBoundaries) {
  const auto map = PartitionMap::initial({1, 2, 3, 4});
  for (std::size_t i = 0; i < map.size(); ++i) {
    EXPECT_EQ(map.index_for(map.entries()[i].range.lo), i);
    EXPECT_EQ(map.index_for(map.entries()[i].range.hi - 1), i);
  }
}

TEST(PartitionMapTest, WireBytesGrowWithEntries) {
  auto map = PartitionMap::initial({1, 2});
  const std::size_t before = map.wire_bytes();
  map.add_replica(0, 3);
  EXPECT_GT(map.wire_bytes(), before);
}

TEST(PartitionMapDeathTest, SplittingReplicatedRangeAborts) {
  auto map = PartitionMap::initial({1, 2});
  map.add_replica(0, 3);
  EXPECT_DEATH(map.split_entry(0, kPositionCount / 4, 9), "replicated");
}

// --------------------------------------------------------- local hash table

LocalHashTable small_table(PosRange range = PosRange{0, 1024}) {
  return LocalHashTable(Schema{100}, range);
}

Tuple tuple_at_position(std::uint64_t pos, std::uint64_t id = 0) {
  return Tuple{id, pos << (64 - kPositionBits)};
}

TEST(LocalHashTableTest, InsertAccountsFootprint) {
  auto table = small_table();
  table.insert(tuple_at_position(5, 1));
  table.insert(tuple_at_position(5, 2));
  EXPECT_EQ(table.tuple_count(), 2u);
  EXPECT_EQ(table.footprint_bytes(), 2 * (100 + kHashEntryOverheadBytes));
}

TEST(LocalHashTableTest, ProbeFindsAllKeyMatches) {
  auto table = small_table();
  const Tuple a = tuple_at_position(5, 1);
  Tuple b = tuple_at_position(5, 2);
  b.key = a.key;  // same join attribute
  Tuple c = tuple_at_position(5, 3);
  c.key = a.key + 1;  // same position, different attribute
  table.insert(a);
  table.insert(b);
  table.insert(c);
  Tuple probe = a;
  probe.id = 99;
  const auto result = table.probe(probe);
  EXPECT_EQ(result.matches, 2u);
  // Binary search over the 3-entry chain plus one comparison per match.
  EXPECT_GE(result.comparisons, result.matches);
  EXPECT_LE(result.comparisons, 3u + result.matches);
  EXPECT_EQ(result.checksum_delta,
            match_signature(1, 99) + match_signature(2, 99));
}

TEST(LocalHashTableTest, ProbeMissReturnsZero) {
  auto table = small_table();
  table.insert(tuple_at_position(5, 1));
  const auto result = table.probe(tuple_at_position(6, 9));
  EXPECT_EQ(result.matches, 0u);
  EXPECT_GE(result.comparisons, 1u);  // the miss still costs a lookup
}

TEST(LocalHashTableTest, ExtractRangeRemovesAndReturns) {
  auto table = small_table();
  for (std::uint64_t pos = 0; pos < 100; ++pos) {
    table.insert(tuple_at_position(pos, pos));
  }
  const auto extracted = table.extract_range(PosRange{50, 100});
  EXPECT_EQ(extracted.size(), 50u);
  EXPECT_EQ(table.tuple_count(), 50u);
  EXPECT_EQ(table.footprint_bytes(), 50 * (100 + kHashEntryOverheadBytes));
  for (const Tuple& t : extracted) {
    EXPECT_GE(position_of(t.key), 50u);
  }
}

TEST(LocalHashTableTest, SetRangeAfterExtraction) {
  auto table = small_table();
  for (std::uint64_t pos = 0; pos < 100; ++pos) {
    table.insert(tuple_at_position(pos, pos));
  }
  table.extract_range(PosRange{50, 1024});
  table.set_range(PosRange{0, 50});
  EXPECT_EQ(table.tuple_count(), 50u);
  // Probing inside the shrunken range still works.
  EXPECT_EQ(table.probe(tuple_at_position(10, 999)).matches, 1u);
}

TEST(LocalHashTableDeathTest, SetRangeOrphaningTuplesAborts) {
  auto table = small_table();
  table.insert(tuple_at_position(5, 1));
  EXPECT_DEATH(table.set_range(PosRange{100, 200}), "orphan");
}

TEST(LocalHashTableDeathTest, InsertOutsideRangeAborts) {
  auto table = small_table(PosRange{0, 10});
  EXPECT_DEATH(table.insert(tuple_at_position(10, 1)), "outside");
}

TEST(LocalHashTableTest, HistogramCountsEntries) {
  auto table = small_table(PosRange{0, 100});
  for (int i = 0; i < 10; ++i) table.insert(tuple_at_position(5, 100 + i));
  table.insert(tuple_at_position(95, 1));
  const auto hist = table.histogram(10);
  EXPECT_EQ(hist.total(), 11u);
  EXPECT_EQ(hist.bin_weight(0), 10u);
  EXPECT_EQ(hist.bin_weight(9), 1u);
}

TEST(LocalHashTableTest, ClearResetsEverything) {
  auto table = small_table();
  table.insert(tuple_at_position(1, 1));
  table.clear();
  EXPECT_EQ(table.tuple_count(), 0u);
  EXPECT_EQ(table.footprint_bytes(), 0u);
}

// ------------------------------------------ scalar/batched equivalence fuzz
//
// insert_batch/probe_batch must be byte-identical to driving the scalar
// calls tuple by tuple: same matches, comparisons, checksum, footprint, and
// the same extracted tuples in the same order.  The fuzz drives two tables
// through random interleavings of batch inserts, probes, and extract_range
// surgery (which invalidates the lazy key index) over random ranges and
// both uniform and heavily skewed position distributions.

/// Random batch whose positions all lie in `range`; `hot_positions` > 0
/// concentrates all rows onto that many distinct positions (skew), and a
/// quarter of the keys are duplicated to exercise same-key match lists.
TupleBatch random_batch(SplitMix64& rng, const PosRange& range,
                        std::size_t rows, std::size_t hot_positions) {
  TupleBatch batch;
  batch.reserve(rows);
  std::uint64_t last_key = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t pos = range.lo + rng.next_u64() % range.width();
    if (hot_positions > 0) {
      pos = range.lo + rng.next_u64() % hot_positions;
    }
    std::uint64_t key = (pos << (64 - kPositionBits)) |
                        (rng.next_u64() & ((1ull << (64 - kPositionBits)) - 1));
    if (i > 0 && rng.next_u64() % 4 == 0) key = last_key;  // duplicate key
    last_key = key;
    batch.append(rng.next_u64(), key);
  }
  return batch;
}

TEST(BatchEquivalenceFuzz, InsertProbeExtractInterleavings) {
  SplitMix64 rng(2026);
  for (int round = 0; round < 24; ++round) {
    // Random owned range, sometimes not starting at zero.
    const std::uint64_t lo = (rng.next_u64() % 8) * 1000;
    const std::uint64_t width = 64 + rng.next_u64() % 4000;
    const PosRange range{lo, lo + width};
    const Schema schema{100};
    LocalHashTable scalar_table(schema, range);
    LocalHashTable batched_table(schema, range);
    const std::size_t hot = (round % 3 == 0) ? 1 + rng.next_u64() % 5 : 0;

    for (int step = 0; step < 12; ++step) {
      const std::uint64_t op = rng.next_u64() % 4;
      if (op <= 1) {  // build batch
        const auto batch =
            random_batch(rng, range, 1 + rng.next_u64() % 500, hot);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          scalar_table.insert(batch.tuple(i));
        }
        batched_table.insert_batch(batch);
      } else if (op == 2) {  // probe batch
        const auto batch =
            random_batch(rng, range, 1 + rng.next_u64() % 500, hot);
        LocalHashTable::BatchProbeResult want;
        want.probed = batch.size();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const auto r = scalar_table.probe(batch.tuple(i));
          want.matches += r.matches;
          want.comparisons += r.comparisons;
          want.checksum_delta += r.checksum_delta;
        }
        const auto got = batched_table.probe_batch(batch);
        EXPECT_EQ(got.probed, want.probed);
        EXPECT_EQ(got.matches, want.matches);
        EXPECT_EQ(got.comparisons, want.comparisons);
        EXPECT_EQ(got.checksum_delta, want.checksum_delta);
      } else {  // extract a random sub-range from both
        const std::uint64_t a = lo + rng.next_u64() % width;
        const std::uint64_t b = lo + rng.next_u64() % width;
        const PosRange sub{std::min(a, b), std::max(a, b) + 1};
        EXPECT_EQ(scalar_table.extract_range(sub),
                  batched_table.extract_range(sub));
      }
      EXPECT_EQ(scalar_table.tuple_count(), batched_table.tuple_count());
      EXPECT_EQ(scalar_table.footprint_bytes(),
                batched_table.footprint_bytes());
    }
  }
}

}  // namespace
}  // namespace ehja
