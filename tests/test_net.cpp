// Unit tests for the switched-Ethernet model: serialization math, NIC
// contention, per-pair FIFO, loopback, stats.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

LinkConfig test_link() {
  LinkConfig link;
  link.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: easy arithmetic
  link.latency_sec = 1e-3;
  link.per_message_overhead_bytes = 0.0;
  return link;
}

TEST(NetworkModelTest, SingleTransferTiming) {
  NetworkModel net(4, test_link());
  // 1000 bytes at 1 MB/s = 1 ms serialization + 1 ms latency.
  const SimTime arrival = net.transfer(0, 1, 1000, /*ready=*/0.0);
  EXPECT_DOUBLE_EQ(arrival, 0.002);
}

TEST(NetworkModelTest, SenderSerializesBackToBack) {
  NetworkModel net(4, test_link());
  net.transfer(0, 1, 1000, 0.0);
  const SimTime second = net.transfer(0, 2, 1000, 0.0);
  // Second message waits for the first to leave the TX side.
  EXPECT_DOUBLE_EQ(second, 0.003);
}

TEST(NetworkModelTest, ReceiverIncastSerializes) {
  NetworkModel net(4, test_link());
  const SimTime a = net.transfer(0, 2, 1000, 0.0);
  const SimTime b = net.transfer(1, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, 0.002);
  EXPECT_DOUBLE_EQ(b, 0.003);  // queued behind a at node 2's RX side
}

TEST(NetworkModelTest, DisjointPairsDoNotInterfere) {
  NetworkModel net(4, test_link());
  const SimTime a = net.transfer(0, 1, 1000, 0.0);
  const SimTime b = net.transfer(2, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // non-blocking switch
}

TEST(NetworkModelTest, PerPairFifo) {
  // Messages planned in nondecreasing ready order from one sender arrive in
  // order at the receiver, regardless of size.
  NetworkModel net(2, test_link());
  SimTime prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const std::size_t bytes = (i % 2 == 0) ? 10000 : 10;
    const SimTime arrival = net.transfer(0, 1, bytes, 0.0);
    EXPECT_GT(arrival, prev);
    prev = arrival;
  }
}

TEST(NetworkModelTest, LoopbackIsCheapAndUnqueued) {
  NetworkModel net(2, test_link());
  const SimTime a = net.transfer(0, 0, 1000, 0.0);
  EXPECT_LT(a, 1e-4);  // far below NIC serialization
  // Loopback must not reserve the NIC.
  EXPECT_DOUBLE_EQ(net.tx_free(0), 0.0);
}

TEST(NetworkModelTest, PerMessageOverheadCharged) {
  LinkConfig link = test_link();
  link.per_message_overhead_bytes = 1000.0;
  NetworkModel net(2, link);
  const SimTime arrival = net.transfer(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(arrival, 0.003);  // 2000 effective bytes + latency
}

TEST(NetworkModelTest, ReadyTimeDelaysDeparture) {
  NetworkModel net(2, test_link());
  const SimTime arrival = net.transfer(0, 1, 1000, /*ready=*/5.0);
  EXPECT_DOUBLE_EQ(arrival, 5.002);
}

TEST(NetworkModelTest, StatsAccumulate) {
  NetworkModel net(3, test_link());
  net.transfer(0, 1, 100, 0.0);
  net.transfer(0, 2, 200, 0.0);
  net.transfer(1, 0, 300, 0.0);
  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.bytes, 600u);
  EXPECT_EQ(stats.tx_bytes[0], 300u);
  EXPECT_EQ(stats.rx_bytes[0], 300u);
  EXPECT_EQ(stats.rx_bytes[2], 200u);
}

TEST(NetworkModelTest, DefaultConfigIsGigabitScale) {
  // 1 GB across one NIC at the default (calibrated gigabit-class) goodput
  // takes ~9 seconds -- the back-of-envelope anchoring the cost model; see
  // util/units.hpp for why the paper's stated 100 Mb/s cannot be right.
  NetworkModel net(2, LinkConfig{});
  const SimTime arrival = net.transfer(0, 1, 1'000'000'000, 0.0);
  EXPECT_NEAR(arrival, 1e9 / 110e6, 0.5);
}

TEST(NetworkModelTest, SharedBusSerializesDisjointPairs) {
  LinkConfig link = test_link();
  link.topology = Topology::kSharedBus;
  NetworkModel net(4, link);
  const SimTime a = net.transfer(0, 1, 1000, 0.0);
  const SimTime b = net.transfer(2, 3, 1000, 0.0);
  // On a shared medium the second transfer waits for the first even though
  // the node pairs are disjoint.
  EXPECT_DOUBLE_EQ(a, 0.002);
  EXPECT_DOUBLE_EQ(b, 0.003);
}

TEST(NetworkModelTest, SharedBusStillFifoPerPair) {
  LinkConfig link = test_link();
  link.topology = Topology::kSharedBus;
  NetworkModel net(2, link);
  SimTime prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    const SimTime arrival = net.transfer(0, 1, 100, 0.0);
    EXPECT_GT(arrival, prev);
    prev = arrival;
  }
}

TEST(NetworkModelTest, DeliveryExposesTxDoneBeforeArrival) {
  NetworkModel net(2, test_link());
  const auto plan = net.plan(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(plan.tx_done, 0.001);
  EXPECT_DOUBLE_EQ(plan.arrival, 0.002);
}

TEST(NetworkModelTest, RxStallDelaysSubsequentTransfers) {
  // Consumer-paced admission: a busy receiver keeps its RX side occupied,
  // so the next sender blocks until the node catches up.
  NetworkModel net(3, test_link());
  net.transfer(0, 2, 1000, 0.0);  // receiver busy until 0.002
  net.stall_rx(2, 10.0);          // node 2 is processing until t=10
  const SimTime arrival = net.transfer(1, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(arrival, 10.002);
}

TEST(NetworkModelTest, RxStallNeverMovesBackwards) {
  NetworkModel net(2, test_link());
  net.stall_rx(1, 5.0);
  net.stall_rx(1, 2.0);  // earlier stall must not shrink the reservation
  const SimTime arrival = net.transfer(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(arrival, 5.002);
}

}  // namespace
}  // namespace ehja
