// Serving-layer integration tests (ctest label: serve).
//
// Every test here runs a real JoinService: coordinator event loop on a
// thread (or a forked child for the SIGTERM test), warm worker processes
// forked from this binary -- hence the custom main() dispatching to
// maybe_run_socket_worker() -- and real ServeClient connections over
// loopback TCP.  The gold standard is unchanged from the batch suites:
// every result a client receives must equal reference_join(config), no
// matter how many queries and tenants were in flight around it.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

serve::TenantSpec tenant_spec(const std::string& name, std::uint32_t priority,
                              std::uint32_t max_slots = 16,
                              std::uint64_t max_memory = 512 * kMiB) {
  serve::TenantSpec t;
  t.name = name;
  t.priority = priority;
  t.max_slots = max_slots;
  t.max_memory_bytes = max_memory;
  return t;
}

/// A sub-second query; distinct seeds make distinct oracles, so result
/// cross-wiring between concurrent queries cannot cancel out.
EhjaConfig small_query(std::uint64_t seed, std::uint64_t tuples = 8'000) {
  EhjaConfig config;
  config.data_sources = 1;
  config.initial_join_nodes = 1;
  config.join_pool_nodes = 2;
  config.node_hash_memory_bytes = 256 * kKiB;
  config.build_rel.tuple_count = tuples;
  config.probe_rel.tuple_count = tuples;
  config.chunk_tuples = 1'000;
  config.generation_slice_tuples = 1'000;
  config.seed = seed;
  return config;
}

/// JoinService on its own thread, stopped through the same polled-flag path
/// tools/ehja_serve.cpp uses for SIGTERM.
class ServiceHarness {
 public:
  explicit ServiceHarness(serve::ServeOptions opts) : service_(std::move(opts)) {
    service_.set_shutdown_flag(&stop_);
    thread_ = std::thread([this] { service_.run(); });
  }
  ~ServiceHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
  }
  std::uint16_t port() const { return service_.port(); }
  serve::JoinService& service() { return service_; }

 private:
  serve::JoinService service_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Graceful shutdown (registered first: this test forks the whole service
// into a child process, which must happen before any test has started
// threads in this process).

std::atomic<bool> g_child_shutdown{false};
void child_on_sigterm(int /*sig*/) { g_child_shutdown.store(true); }

TEST(ServeShutdown, SigtermDrainsInFlightAndExitsZero) {
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- child: the server process, exactly as tools/ehja_serve.cpp runs it.
    ::close(pipefd[0]);
    ::signal(SIGTERM, child_on_sigterm);
    serve::ServeOptions opts;
    opts.fleet_workers = 2;
    opts.drain_deadline_sec = 60.0;
    opts.tenants.push_back(tenant_spec("alpha", 1));
    serve::JoinService service(std::move(opts));
    service.set_shutdown_flag(&g_child_shutdown);
    const std::uint16_t port = service.port();
    if (::write(pipefd[1], &port, sizeof(port)) != sizeof(port)) std::_Exit(9);
    ::close(pipefd[1]);
    service.run();
    std::_Exit(0);
  }
  ::close(pipefd[1]);
  std::uint16_t port = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(pipefd[0]);

  serve::ServeClient client;
  std::string error;
  ASSERT_TRUE(client.connect(port, "alpha", &error)) << error;

  // A first round served to completion proves the server is healthy...
  std::vector<std::uint64_t> done_ids;
  for (int i = 0; i < 3; ++i) {
    const auto reply = client.submit_with_retry(small_query(100 + i));
    ASSERT_TRUE(reply.has_value() && reply->accepted);
    done_ids.push_back(reply->query_id);
  }
  for (const std::uint64_t id : done_ids) {
    ASSERT_TRUE(client.wait_result(id).has_value());
  }

  // ...then SIGTERM lands with fresh queries still in flight.  Running
  // queries drain; queued ones are bounced; either way the process must
  // exit 0 well inside the drain deadline.
  for (int i = 0; i < 3; ++i) {
    const auto reply = client.submit(small_query(200 + i));
    ASSERT_TRUE(reply.has_value() && reply->accepted);
  }
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------------
// Oracle equality under heavy concurrency: >= 64 queries, two tenants,
// every result byte-checked against the serial oracle.

TEST(ServeConcurrency, SixtyFourQueriesTwoTenantsMatchOracle) {
  serve::ServeOptions opts;
  opts.fleet_workers = 3;
  opts.tenants.push_back(tenant_spec("alpha", 1));
  opts.tenants.push_back(tenant_spec("beta", 0));
  ServiceHarness harness(std::move(opts));

  std::vector<serve::WorkloadQuery> queries;
  for (int i = 0; i < 64; ++i) {
    serve::WorkloadQuery q;
    q.tenant = (i % 2 == 0) ? "alpha" : "beta";
    q.config = small_query(1000 + i);
    queries.push_back(std::move(q));
  }
  const serve::ReplayStats stats =
      serve::replay_workload(harness.port(), queries, /*concurrency=*/16,
                             /*verify=*/true);
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.accepted, 64u);
  EXPECT_EQ(stats.completed, 64u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);

  harness.stop();
  EXPECT_EQ(harness.service().queries_completed(), 64u);
}

// ---------------------------------------------------------------------------
// Budgets arbitrate, never starve: a tenant capped at one query at a time
// shares the fleet with an unconstrained one; everything completes and
// verifies.

TEST(ServeBudgets, OverBudgetTenantQueuesWithoutStarvingOthers) {
  serve::ServeOptions opts;
  opts.fleet_workers = 3;
  // greedy outranks modest but may hold only 2 slots (= one 1-source,
  // 1-join query); its backlog must not block modest's flow.
  opts.tenants.push_back(tenant_spec("greedy", 5, /*max_slots=*/2));
  opts.tenants.push_back(tenant_spec("modest", 0));
  ServiceHarness harness(std::move(opts));

  std::vector<serve::WorkloadQuery> queries;
  for (int i = 0; i < 12; ++i) {
    serve::WorkloadQuery q;
    q.tenant = (i % 2 == 0) ? "greedy" : "modest";
    q.config = small_query(2000 + i);
    queries.push_back(std::move(q));
  }
  const serve::ReplayStats stats =
      serve::replay_workload(harness.port(), queries, /*concurrency=*/6,
                             /*verify=*/true);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
}

// ---------------------------------------------------------------------------
// Backpressure: a full queue bounces with a retry hint instead of buffering
// without bound, and the bounced client can retry its way in.

TEST(ServeBackpressure, QueueFullRejectsWithRetryHint) {
  serve::ServeOptions opts;
  opts.fleet_workers = 2;
  opts.max_queue = 2;
  // One query at a time: every later submission queues behind it.
  opts.tenants.push_back(tenant_spec("alpha", 0, /*max_slots=*/2));
  ServiceHarness harness(std::move(opts));

  serve::ServeClient client;
  std::string error;
  ASSERT_TRUE(client.connect(harness.port(), "alpha", &error)) << error;

  // q1, sized to still be running while the rest of the test happens.
  const auto q1 = client.submit(small_query(31, /*tuples=*/200'000));
  ASSERT_TRUE(q1.has_value() && q1->accepted);
  // Wait until q1 has left the queue (admitted), so the queue is empty.
  for (int spin = 0;; ++spin) {
    const auto st = client.status(q1->query_id);
    ASSERT_TRUE(st.has_value());
    if (st->state != serve::QueryState::kQueued) break;
    ASSERT_LT(spin, 500) << "q1 never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Two more fill the queue (budget-blocked behind q1)...
  const auto q2 = client.submit(small_query(32));
  ASSERT_TRUE(q2.has_value() && q2->accepted);
  const auto q3 = client.submit(small_query(33));
  ASSERT_TRUE(q3.has_value() && q3->accepted);

  // ...and the next submission must bounce with a transient, hinted reject.
  const auto q4 = client.submit(small_query(34));
  ASSERT_TRUE(q4.has_value());
  EXPECT_FALSE(q4->accepted);
  EXPECT_EQ(q4->reason, serve::RejectCode::kQueueFull);
  EXPECT_GT(q4->retry_after_ms, 0u);

  // The backlog still drains to correct results.
  const auto big_result = client.wait_result(q1->query_id, 180.0);
  ASSERT_TRUE(big_result.has_value());
  const JoinResult big_oracle = reference_join(small_query(31, 200'000));
  EXPECT_EQ(big_result->matches, big_oracle.matches);
  EXPECT_EQ(big_result->checksum, big_oracle.checksum);
  const std::uint64_t queued_ids[] = {q2->query_id, q3->query_id};
  const std::uint64_t queued_seeds[] = {32, 33};
  for (int i = 0; i < 2; ++i) {
    const auto result = client.wait_result(queued_ids[i]);
    ASSERT_TRUE(result.has_value());
    const JoinResult oracle = reference_join(small_query(queued_seeds[i]));
    EXPECT_EQ(result->matches, oracle.matches);
    EXPECT_EQ(result->checksum, oracle.checksum);
  }
}

// ---------------------------------------------------------------------------
// Forward compatibility at the front door: garbage (or a newer build's
// framing) gets one polite kQueryRejected farewell and a dropped
// connection; the server keeps serving everyone else.

TEST(ServeForwardCompat, BadFrameGetsRejectAndServerSurvives) {
  serve::ServeOptions opts;
  opts.fleet_workers = 2;
  opts.tenants.push_back(tenant_spec("alpha", 0));
  ServiceHarness harness(std::move(opts));

  // Raw garbage at the framing layer (bad magic from byte 0).
  const int fd = netio::try_connect_loopback(harness.port());
  ASSERT_GE(fd, 0);
  {
    auto conn = netio::adopt_fd(fd);
    std::vector<std::uint8_t> junk(64, 0xAB);
    conn->out.assign(junk.begin(), junk.end());
    netio::must_flush(*conn, 5.0, "junk");
    const wire::Frame farewell =
        netio::must_recv_frame(*conn, 10.0, "farewell reject");
    ASSERT_EQ(farewell.kind, wire::FrameKind::kQueryRejected);
    wire::Reader r(farewell.body);
    serve::QueryRejectedPayload reject;
    ASSERT_TRUE(serve::decode_payload(r, reject));
    EXPECT_EQ(reject.reason, serve::RejectCode::kBadFrame);
  }

  // A well-formed client still gets served afterwards.
  serve::ServeClient client;
  std::string error;
  ASSERT_TRUE(client.connect(harness.port(), "alpha", &error)) << error;
  const auto reply = client.submit_with_retry(small_query(77));
  ASSERT_TRUE(reply.has_value() && reply->accepted);
  const auto result = client.wait_result(reply->query_id);
  ASSERT_TRUE(result.has_value());
  const JoinResult oracle = reference_join(small_query(77));
  EXPECT_EQ(result->matches, oracle.matches);
  EXPECT_EQ(result->checksum, oracle.checksum);
}

// ---------------------------------------------------------------------------
// Expansion through admission: the same overflowing query expands when its
// tenant has slot headroom and degrades to spilling (still correct) when
// the budget says no.

EhjaConfig overflowing_query(std::uint64_t seed) {
  EhjaConfig config;
  config.data_sources = 1;
  config.initial_join_nodes = 1;
  config.join_pool_nodes = 4;
  config.build_rel.tuple_count = 30'000;
  config.probe_rel.tuple_count = 30'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(2048);
  config.probe_rel.dist = DistributionSpec::SmallDomain(2048);
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  // ~4000 of 30000 build tuples fit per node: guaranteed overflow.
  config.node_hash_memory_bytes = 4000 * tuple_footprint(config.build_rel.schema);
  config.seed = seed;
  return config;
}

TEST(ServeExpansion, GrantedWithinBudgetDeniedBeyondIt) {
  serve::ServeOptions opts;
  opts.fleet_workers = 4;
  // roomy can recruit; tight is capped at exactly its initial demand
  // (1 source + 1 join = 2 slots), so every expansion request is denied.
  opts.tenants.push_back(tenant_spec("roomy", 0, /*max_slots=*/8));
  opts.tenants.push_back(tenant_spec("tight", 0, /*max_slots=*/2));
  ServiceHarness harness(std::move(opts));

  serve::ServeClient roomy;
  serve::ServeClient tight;
  ASSERT_TRUE(roomy.connect(harness.port(), "roomy"));
  ASSERT_TRUE(tight.connect(harness.port(), "tight"));

  const EhjaConfig config = overflowing_query(55);
  const JoinResult oracle = reference_join(config);

  const auto roomy_reply = roomy.submit_with_retry(config);
  ASSERT_TRUE(roomy_reply.has_value() && roomy_reply->accepted);
  const auto roomy_result = roomy.wait_result(roomy_reply->query_id, 180.0);
  ASSERT_TRUE(roomy_result.has_value());
  EXPECT_EQ(roomy_result->matches, oracle.matches);
  EXPECT_EQ(roomy_result->checksum, oracle.checksum);
  EXPECT_GT(roomy_result->expansions, 0u)
      << "an overflowing build with slot headroom should have expanded";

  const auto tight_reply = tight.submit_with_retry(config);
  ASSERT_TRUE(tight_reply.has_value() && tight_reply->accepted);
  const auto tight_result = tight.wait_result(tight_reply->query_id, 180.0);
  ASSERT_TRUE(tight_result.has_value());
  EXPECT_EQ(tight_result->matches, oracle.matches);
  EXPECT_EQ(tight_result->checksum, oracle.checksum);
  EXPECT_EQ(tight_result->expansions, 0u)
      << "a tenant at its slot budget must be denied and spill instead";
}

}  // namespace
}  // namespace ehja

// Custom main: the service's forked workers re-execute this binary with
// --ehja-worker=N; they must become runtime workers, not gtest runs.
int main(int argc, char** argv) {
  if (const auto worker_exit = ehja::maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
