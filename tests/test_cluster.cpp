// Unit tests for cluster specs and the resource pool policies.
#include <gtest/gtest.h>

#include "cluster/cluster_spec.hpp"
#include "cluster/resource_pool.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

TEST(ClusterSpecTest, UniformClusterShape) {
  const ClusterSpec spec = make_uniform_cluster(8, 64 * kMiB);
  EXPECT_EQ(spec.node_count(), 8u);
  for (NodeId id = 0; id < 8; ++id) {
    EXPECT_EQ(spec.node(id).id, id);
    EXPECT_EQ(spec.node(id).hash_memory_bytes, 64 * kMiB);
    EXPECT_DOUBLE_EQ(spec.node(id).cpu_scale, 1.0);
  }
}

TEST(ResourcePoolTest, LargestFreeMemoryPolicy) {
  ClusterSpec spec = make_uniform_cluster(5, 10 * kMiB);
  spec.nodes[3].hash_memory_bytes = 99 * kMiB;
  spec.nodes[1].hash_memory_bytes = 50 * kMiB;
  ResourcePool pool(spec, {0, 1, 2, 3, 4},
                    NodePickPolicy::kLargestFreeMemory);
  EXPECT_EQ(pool.acquire().value(), 3);
  EXPECT_EQ(pool.acquire().value(), 1);
  // Remaining three tie at 10 MiB; lowest id wins for determinism.
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 2);
  EXPECT_EQ(pool.acquire().value(), 4);
  EXPECT_FALSE(pool.acquire().has_value());
}

TEST(ResourcePoolTest, FirstAvailablePolicy) {
  const ClusterSpec spec = make_uniform_cluster(4);
  ResourcePool pool(spec, {2, 0, 3}, NodePickPolicy::kFirstAvailable);
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 2);
  EXPECT_EQ(pool.acquire().value(), 3);
}

TEST(ResourcePoolTest, RoundRobinPolicyCycles) {
  const ClusterSpec spec = make_uniform_cluster(4);
  ResourcePool pool(spec, {0, 1, 2, 3}, NodePickPolicy::kRoundRobin);
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 1);
  EXPECT_EQ(pool.acquire().value(), 2);
}

TEST(ResourcePoolTest, ReleaseReturnsNode) {
  const ClusterSpec spec = make_uniform_cluster(3);
  ResourcePool pool(spec, {0, 1}, NodePickPolicy::kFirstAvailable);
  const NodeId a = pool.acquire().value();
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.acquired_count(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.acquired_count(), 0u);
}

TEST(ResourcePoolTest, EmptyPoolReturnsNullopt) {
  const ClusterSpec spec = make_uniform_cluster(2);
  ResourcePool pool(spec, {}, NodePickPolicy::kLargestFreeMemory);
  EXPECT_FALSE(pool.acquire().has_value());
  EXPECT_EQ(pool.available(), 0u);
}

TEST(CostModelTest, ScaledApplies) {
  CostModel cost;
  cost.cpu_scale = 2.0;
  EXPECT_DOUBLE_EQ(cost.scaled(10.0), 20.0);
}

}  // namespace
}  // namespace ehja
