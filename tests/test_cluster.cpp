// Unit tests for cluster specs and the resource pool policies.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/resource_pool.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

TEST(ClusterSpecTest, UniformClusterShape) {
  const ClusterSpec spec = make_uniform_cluster(8, 64 * kMiB);
  EXPECT_EQ(spec.node_count(), 8u);
  for (NodeId id = 0; id < 8; ++id) {
    EXPECT_EQ(spec.node(id).id, id);
    EXPECT_EQ(spec.node(id).hash_memory_bytes, 64 * kMiB);
    EXPECT_DOUBLE_EQ(spec.node(id).cpu_scale, 1.0);
  }
}

TEST(ResourcePoolTest, LargestFreeMemoryPolicy) {
  ClusterSpec spec = make_uniform_cluster(5, 10 * kMiB);
  spec.nodes[3].hash_memory_bytes = 99 * kMiB;
  spec.nodes[1].hash_memory_bytes = 50 * kMiB;
  ResourcePool pool(spec, {0, 1, 2, 3, 4},
                    NodePickPolicy::kLargestFreeMemory);
  EXPECT_EQ(pool.acquire().value(), 3);
  EXPECT_EQ(pool.acquire().value(), 1);
  // Remaining three tie at 10 MiB; lowest id wins for determinism.
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 2);
  EXPECT_EQ(pool.acquire().value(), 4);
  EXPECT_FALSE(pool.acquire().has_value());
}

TEST(ResourcePoolTest, FirstAvailablePolicy) {
  const ClusterSpec spec = make_uniform_cluster(4);
  ResourcePool pool(spec, {2, 0, 3}, NodePickPolicy::kFirstAvailable);
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 2);
  EXPECT_EQ(pool.acquire().value(), 3);
}

TEST(ResourcePoolTest, RoundRobinPolicyCycles) {
  const ClusterSpec spec = make_uniform_cluster(4);
  ResourcePool pool(spec, {0, 1, 2, 3}, NodePickPolicy::kRoundRobin);
  EXPECT_EQ(pool.acquire().value(), 0);
  EXPECT_EQ(pool.acquire().value(), 1);
  EXPECT_EQ(pool.acquire().value(), 2);
}

TEST(ResourcePoolTest, ReleaseReturnsNode) {
  const ClusterSpec spec = make_uniform_cluster(3);
  ResourcePool pool(spec, {0, 1}, NodePickPolicy::kFirstAvailable);
  const NodeId a = pool.acquire().value();
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.acquired_count(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.acquired_count(), 0u);
}

TEST(ResourcePoolTest, EmptyPoolReturnsNullopt) {
  const ClusterSpec spec = make_uniform_cluster(2);
  ResourcePool pool(spec, {}, NodePickPolicy::kLargestFreeMemory);
  EXPECT_FALSE(pool.acquire().has_value());
  EXPECT_EQ(pool.available(), 0u);
}

// The fleet-level provider (serve-mode admission) may hand the *same*
// worker node to one query repeatedly -- co-located processes are
// legitimate placement -- so hook provenance is a count, and every one of
// the grants must be returned to the provider individually.
TEST(ResourcePoolTest, HookMayGrantTheSameNodeRepeatedly) {
  const ClusterSpec spec = make_uniform_cluster(4, 10 * kMiB);
  ResourcePool pool(spec, {}, NodePickPolicy::kLargestFreeMemory);
  int outstanding = 0;
  PoolHooks hooks;
  hooks.acquire = [&]() -> std::optional<NodeId> {
    ++outstanding;
    return NodeId{2};
  };
  hooks.release = [&](NodeId id) {
    EXPECT_EQ(id, NodeId{2});
    --outstanding;
  };
  pool.set_hooks(std::move(hooks));

  const auto a = pool.acquire();
  const auto b = pool.acquire();
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*a, NodeId{2});
  EXPECT_EQ(*b, NodeId{2});
  EXPECT_EQ(pool.acquired_count(), 2u);
  EXPECT_EQ(outstanding, 2);

  pool.release(*a);
  EXPECT_EQ(outstanding, 1);  // one grant still out
  pool.release(*b);
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(pool.acquired_count(), 0u);
  EXPECT_EQ(pool.available(), 0u);  // hook nodes never join the free list
}

// Concurrency hammer: many threads acquiring, releasing, bulk-reserving and
// snapshotting one pool at once, with a hook provider underneath -- the
// serve-mode shape, where query schedulers and the admission controller
// share pools across threads.  Run under TSan in CI (the tsan ctest job
// includes this suite); the functional assertions below catch double-grants
// and lost returns even without it.
TEST(ResourcePoolTest, ConcurrentAcquireReleaseNeverDuplicatesOrLoses) {
  const ClusterSpec spec = make_uniform_cluster(64, 10 * kMiB);
  std::vector<NodeId> local;
  for (NodeId id = 0; id < 16; ++id) local.push_back(id);
  ResourcePool pool(spec, local, NodePickPolicy::kLargestFreeMemory);

  // Hook provider: nodes 100..147, each grantable at most once until
  // returned.  Its own mutex stands in for the admission controller's.
  std::mutex hook_mutex;
  std::vector<NodeId> hook_free;
  for (NodeId id = 100; id < 148; ++id) hook_free.push_back(id);
  std::atomic<int> double_grants{0};
  std::vector<int> hook_out(200, 0);
  PoolHooks hooks;
  hooks.acquire = [&]() -> std::optional<NodeId> {
    std::lock_guard<std::mutex> lock(hook_mutex);
    if (hook_free.empty()) return std::nullopt;
    const NodeId id = hook_free.back();
    hook_free.pop_back();
    if (++hook_out[static_cast<std::size_t>(id)] != 1) ++double_grants;
    return id;
  };
  hooks.release = [&](NodeId id) {
    std::lock_guard<std::mutex> lock(hook_mutex);
    if (--hook_out[static_cast<std::size_t>(id)] != 0) ++double_grants;
    hook_free.push_back(id);
  };
  pool.set_hooks(std::move(hooks));

  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  std::atomic<int> duplicate_holds{0};
  std::mutex held_mutex;
  std::unordered_set<NodeId> held;  // every node out on loan, pool- or hook-

  const auto worker = [&](int t) {
    std::vector<NodeId> mine;
    for (int round = 0; round < kRounds; ++round) {
      if (const auto got = pool.acquire()) {
        std::lock_guard<std::mutex> lock(held_mutex);
        if (!held.insert(*got).second) ++duplicate_holds;
        mine.push_back(*got);
      }
      if ((round + t) % 3 == 0 && !mine.empty()) {
        const NodeId back = mine.back();
        mine.pop_back();
        {
          std::lock_guard<std::mutex> lock(held_mutex);
          held.erase(back);
        }
        pool.release(back);
      }
      if ((round + t) % 7 == 0) {
        if (const auto batch = pool.try_reserve(2)) {
          std::lock_guard<std::mutex> lock(held_mutex);
          for (const NodeId id : *batch) {
            if (!held.insert(id).second) ++duplicate_holds;
            mine.push_back(id);
          }
        }
      }
      // Read paths must be safe mid-churn (failover snapshots do this).
      (void)pool.available();
      (void)pool.free_nodes();
      (void)pool.acquired_count();
    }
    for (const NodeId id : mine) {
      {
        std::lock_guard<std::mutex> lock(held_mutex);
        held.erase(id);
      }
      pool.release(id);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(duplicate_holds.load(), 0) << "a node was handed to two holders";
  EXPECT_EQ(double_grants.load(), 0) << "hook provenance was corrupted";
  EXPECT_TRUE(held.empty());
  // Everything came home: the local free list is whole and the hook got
  // every granted node back.
  EXPECT_EQ(pool.available(), local.size());
  EXPECT_EQ(pool.acquired_count(), 0u);
  EXPECT_EQ(hook_free.size(), 48u);
}

TEST(CostModelTest, ScaledApplies) {
  CostModel cost;
  cost.cpu_scale = 2.0;
  EXPECT_DOUBLE_EQ(cost.scaled(10.0), 20.0);
}

}  // namespace
}  // namespace ehja
