// Unit tests for the core module's value types: configuration derivation,
// message payload typing, metrics arithmetic.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "runtime/message.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

// ------------------------------------------------------------------ config

TEST(ConfigTest, NodeLayoutIsDisjointAndComplete) {
  EhjaConfig config;
  config.data_sources = 3;
  config.join_pool_nodes = 5;
  EXPECT_EQ(config.total_nodes(), 1u + 3u + 5u);
  EXPECT_EQ(config.scheduler_node(), 0);
  EXPECT_EQ(config.source_node(0), 1);
  EXPECT_EQ(config.source_node(2), 3);
  EXPECT_EQ(config.pool_node(0), 4);
  EXPECT_EQ(config.pool_node(4), 8);
}

TEST(ConfigTest, MakeClusterAppliesKnobs) {
  EhjaConfig config;
  config.node_hash_memory_bytes = 13 * kMiB;
  config.link.latency_sec = 1e-3;
  config.cost.tuple_insert_sec = 42e-9;
  config.disk.seek_sec = 0.5;
  const ClusterSpec spec = make_cluster(config);
  EXPECT_EQ(spec.node_count(), config.total_nodes());
  EXPECT_EQ(spec.node(0).hash_memory_bytes, 13 * kMiB);
  EXPECT_DOUBLE_EQ(spec.link.latency_sec, 1e-3);
  EXPECT_DOUBLE_EQ(spec.cost.tuple_insert_sec, 42e-9);
  EXPECT_DOUBLE_EQ(spec.disk.seek_sec, 0.5);
}

// validate_or_error() is the gate behind every tool's flag parsing (and the
// serve layer's screening of client-submitted configs): nonsensical knob
// combinations must come back as a described error, not surface later as
// undefined runtime behaviour.
TEST(ConfigTest, ValidateRejectsNonsensicalKnobs) {
  const auto error_of = [](const EhjaConfig& c) {
    const auto err = c.validate_or_error();
    return err.value_or("");
  };

  EhjaConfig ok;
  EXPECT_FALSE(ok.validate_or_error().has_value());

  EhjaConfig c = ok;
  c.initial_join_nodes = 0;
  EXPECT_NE(error_of(c).find(">= 1"), std::string::npos);

  c = ok;
  c.initial_join_nodes = c.join_pool_nodes + 1;
  EXPECT_NE(error_of(c).find("exceed the pool"), std::string::npos);

  c = ok;
  c.data_sources = 0;
  EXPECT_NE(error_of(c).find("data sources"), std::string::npos);

  c = ok;
  c.chunk_tuples = 0;
  EXPECT_NE(error_of(c).find("chunk"), std::string::npos);

  c = ok;
  c.node_hash_memory_bytes = 1;  // smaller than one tuple footprint
  EXPECT_NE(error_of(c).find("hash memory"), std::string::npos);

  c = ok;
  c.reshuffle_bins = c.join_pool_nodes - 1;
  EXPECT_NE(error_of(c).find("bins"), std::string::npos);
}

TEST(ConfigTest, ValidateRejectsBadPhiDetectorKnobs) {
  EhjaConfig ok;
  ok.ft.detector = DetectorKind::kPhiAccrual;
  EXPECT_FALSE(ok.validate_or_error().has_value());

  // The phi knobs are screened whenever the phi detector is *selected*,
  // even without an armed fault plan: --detector=phi --phi-window=0 must be
  // a usage error up front.
  EhjaConfig c = ok;
  c.ft.phi_window = 0;
  ASSERT_TRUE(c.validate_or_error().has_value());
  EXPECT_NE(c.validate_or_error()->find("window"), std::string::npos);

  c = ok;
  c.ft.phi_threshold = 0.0;
  ASSERT_TRUE(c.validate_or_error().has_value());
  EXPECT_NE(c.validate_or_error()->find("threshold"), std::string::npos);

  c = ok;
  c.ft.phi_threshold = -3.0;
  EXPECT_TRUE(c.validate_or_error().has_value());

  // The same bad knobs with the default detector are fine: unused knobs
  // are not screened.
  c = ok;
  c.ft.detector = DetectorKind::kTimeout;
  c.ft.phi_window = 0;
  c.ft.phi_threshold = -1.0;
  EXPECT_FALSE(c.validate_or_error().has_value());
}

TEST(ConfigTest, ValidateRejectsInconsistentFaultTolerance) {
  EhjaConfig c;
  c.ft.force_enabled = true;
  c.ft.heartbeat_interval_sec = 0.0;
  ASSERT_TRUE(c.validate_or_error().has_value());
  EXPECT_NE(c.validate_or_error()->find("heartbeat interval"),
            std::string::npos);

  c = EhjaConfig{};
  c.ft.force_enabled = true;
  c.ft.heartbeat_timeout_sec = c.ft.heartbeat_interval_sec;  // must exceed
  ASSERT_TRUE(c.validate_or_error().has_value());
  EXPECT_NE(c.validate_or_error()->find("timeout"), std::string::npos);

  // A standby scheduler alone is fine: it *implies* the recovery machinery
  // (heartbeats must flow for the standby's own detector to behave).
  c = EhjaConfig{};
  c.ft.standby_scheduler = true;
  EXPECT_FALSE(c.validate_or_error().has_value());
  EXPECT_TRUE(c.recovery_enabled());
}

TEST(ConfigTest, ToStringMentionsAlgorithmAndSizes) {
  EhjaConfig config;
  config.algorithm = Algorithm::kSplit;
  const std::string text = config.to_string();
  EXPECT_NE(text.find("split"), std::string::npos);
  EXPECT_NE(text.find("J=4"), std::string::npos);
}

TEST(ConfigTest, AlgorithmNamesDistinct) {
  EXPECT_STRNE(algorithm_name(Algorithm::kSplit),
               algorithm_name(Algorithm::kReplicate));
  EXPECT_STRNE(algorithm_name(Algorithm::kHybrid),
               algorithm_name(Algorithm::kOutOfCore));
  EXPECT_STRNE(split_variant_name(SplitVariant::kRequesterMidpoint),
               split_variant_name(SplitVariant::kLinearPointer));
}

// ---------------------------------------------------------------- messages

TEST(MessageTest, TypedPayloadRoundTrip) {
  MemoryFullPayload payload;
  payload.footprint_bytes = 1234;
  payload.budget_bytes = 1000;
  const Message msg = make_message(Tag::kMemoryFull, payload, 64);
  EXPECT_EQ(msg.tag, static_cast<int>(Tag::kMemoryFull));
  EXPECT_EQ(msg.wire_bytes, 64u);
  EXPECT_EQ(msg.as<MemoryFullPayload>().footprint_bytes, 1234u);
}

TEST(MessageTest, SignalHasNoPayload) {
  const Message msg = make_signal(Tag::kRelief);
  EXPECT_FALSE(msg.has_payload());
  EXPECT_EQ(msg.wire_bytes, kControlWireBytes);
}

TEST(MessageTest, SharedPayloadAcrossCopies) {
  ChunkPayload payload;
  for (int i = 0; i < 100; ++i) payload.chunk.batch.append(i, i);
  const Message original = make_message(Tag::kDataChunk, std::move(payload),
                                        1000);
  const Message copy = original;  // broadcast-style copy
  EXPECT_EQ(copy.payload.get(), original.payload.get());
  EXPECT_EQ(copy.as<ChunkPayload>().chunk.size(), 100u);
}

TEST(MessageDeathTest, WrongPayloadTypeAborts) {
  const Message msg = make_message(Tag::kMemoryFull, MemoryFullPayload{}, 64);
  EXPECT_DEATH(msg.as<ChunkPayload>(), "type mismatch");
}

TEST(MessageDeathTest, MissingPayloadAborts) {
  const Message msg = make_signal(Tag::kRelief);
  EXPECT_DEATH(msg.as<MemoryFullPayload>(), "no payload");
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, PhaseArithmetic) {
  RunMetrics m;
  m.t_start = 1.0;
  m.t_build_end = 5.0;
  m.t_reshuffle_end = 6.5;
  m.t_probe_end = 10.0;
  m.t_complete = 12.0;
  EXPECT_DOUBLE_EQ(m.build_time(), 4.0);
  EXPECT_DOUBLE_EQ(m.reshuffle_time(), 1.5);
  EXPECT_DOUBLE_EQ(m.probe_time(), 3.5);
  EXPECT_DOUBLE_EQ(m.finish_time(), 2.0);
  EXPECT_DOUBLE_EQ(m.total_time(), 11.0);
}

TEST(MetricsTest, LoadChunksDividesByChunkSize) {
  RunMetrics m;
  NodeMetrics a;
  a.build_tuples = 25'000;
  NodeMetrics b;
  b.build_tuples = 5'000;
  m.nodes = {a, b};
  const auto loads = m.load_chunks(10'000);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 2.5);
  EXPECT_DOUBLE_EQ(loads[1], 0.5);
}

TEST(MetricsTest, SummaryMentionsKeyNumbers) {
  RunMetrics m;
  m.t_complete = 42.0;
  m.initial_join_nodes = 4;
  m.final_join_nodes = 9;
  m.join.matches = 777;
  const std::string text = m.summary();
  EXPECT_NE(text.find("4->9"), std::string::npos);
  EXPECT_NE(text.find("777"), std::string::npos);
}

// ------------------------------------------------------------ trace names

TEST(TraceKindTest, AllKindsNamed) {
  for (const TraceKind kind :
       {TraceKind::kPhase, TraceKind::kExpansion, TraceKind::kMemoryFull,
        TraceKind::kSplitOp, TraceKind::kHandoffOp, TraceKind::kReshuffle,
        TraceKind::kSpillSwitch, TraceKind::kMemSample,
        TraceKind::kDrainRound}) {
    EXPECT_STRNE(trace_kind_name(kind), "?");
  }
}

}  // namespace
}  // namespace ehja
