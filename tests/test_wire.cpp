// Wire-format tests (net/wire.hpp).
//
// Two properties carry the suite:
//   1. Round-trip fidelity -- for every message tag in the protocol
//      vocabulary (and for EhjaConfig and the frame layer), decode(encode(x))
//      re-encodes to the identical byte string.  Byte-level comparison of the
//      re-encoding is a deep structural equality that needs no operator== on
//      payload structs and additionally proves the encoding is canonical.
//   2. Decode totality -- truncated and bit-flipped input makes decoders
//      return false (or FrameStatus::kError); it never aborts, never reads
//      out of bounds (the CI asan job runs this file under ASan), and never
//      allocates unbounded memory from a corrupt length field.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "net/wire.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

using wire::Reader;
using wire::Writer;

// --- primitives ---

TEST(WirePrimitives, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-1234.5e-6);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1234.5e-6);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WirePrimitives, VarintRoundTripEdges) {
  const std::uint64_t cases[] = {0,       1,          127,        128,
                                 16383,   16384,      (1ull << 32) - 1,
                                 1ull << 32, ~0ull - 1, ~0ull};
  for (const std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(WirePrimitives, ZigzagRoundTripEdges) {
  const std::int64_t cases[] = {0,  -1, 1,  -2, 63, -64, 1'000'000,
                                -1'000'000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    Writer w;
    w.zigzag(v);
    Reader r(w.data());
    EXPECT_EQ(r.zigzag(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(WirePrimitives, OverlongVarintIsError) {
  // Eleven continuation bytes can encode nothing a u64 holds.
  std::vector<std::uint8_t> buf(11, 0x80);
  Reader r(buf.data(), buf.size());
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(WirePrimitives, TruncationLatchesFailure) {
  Writer w;
  w.u64(42);
  Reader r(w.data().data(), 3);  // cut mid-integer
  r.u64();
  EXPECT_FALSE(r.ok());
  // Latched: further reads keep failing and return zero.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(WirePrimitives, CanHoldRejectsAbsurdCounts) {
  const std::uint8_t small[4] = {0, 0, 0, 0};
  Reader r(small, sizeof(small));
  EXPECT_TRUE(r.can_hold(2, 2));
  EXPECT_FALSE(r.can_hold(1u << 30, 8));  // would demand gigabytes
  EXPECT_FALSE(r.ok());
}

TEST(WireCrc32, KnownVector) {
  // The classic IEEE 802.3 check value.
  const char* s = "123456789";
  EXPECT_EQ(wire::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
}

// --- message catalogue: one Message per protocol tag ---

PartitionMap sample_map() { return PartitionMap::initial({5, 7, 9}); }

BinnedHistogram sample_histogram() {
  BinnedHistogram h(64, 4096, 8);
  h.add(65, 3);
  h.add(1000, 7);
  h.add(4095, 11);
  return h;
}

Chunk sample_chunk(RelTag rel) {
  Chunk c;
  c.rel = rel;
  c.batch = TupleBatch::from_tuples({Tuple{1, 100}, Tuple{2, 200},
                                     Tuple{~0ull, ~0ull}});
  return c;
}

NodeMetrics sample_metrics() {
  NodeMetrics m;
  m.actor = 3;
  m.node = 7;
  m.build_tuples = 11;
  m.probe_tuples = 12;
  m.matches = 13;
  m.chunks_received = 14;
  m.chunks_forwarded = 15;
  m.max_overshoot_bytes = 16;
  m.spilled_build_tuples = 17;
  m.spilled_probe_tuples = 18;
  m.spilled_partitions = 19;
  m.fence_dropped_tuples = 20;
  return m;
}

/// Every message the protocol can put on the wire, with every payload field
/// set to a non-default value so a dropped/reordered field cannot hide.
std::vector<Message> message_catalogue() {
  std::vector<Message> all;
  auto add = [&all](Message m, ActorId from) {
    m.from = from;
    all.push_back(std::move(m));
  };

  add(make_message(Tag::kJoinInit,
                   JoinInitPayload{JoinRole::kReplica, PosRange{10, 500}, 3, 7},
                   64),
      0);
  add(make_message(Tag::kStartBuild, StartBuildPayload{sample_map(), 4}, 128),
      0);
  add(make_signal(Tag::kGenSlice), 4);
  {
    ChunkPayload p{sample_chunk(RelTag::kS), true, 9};
    add(make_message(Tag::kDataChunk, p, 364), 4);
  }
  add(make_message(Tag::kForwardEnd, ForwardEndPayload{3}, 48), 5);
  add(make_message(Tag::kMemoryFull, MemoryFullPayload{123456789, 987654}, 48),
      5);
  add(make_message(Tag::kSplitRequest,
                   SplitRequestPayload{2, PosRange{100, 200}, 11}, 48),
      0);
  add(make_message(Tag::kHandoffStart, HandoffStartPayload{5, 13}, 48), 0);
  add(make_message(Tag::kOpComplete, OpCompletePayload{5, 999}, 48), 6);
  add(make_signal(Tag::kRelief), 0);
  add(make_signal(Tag::kSwitchToSpill), 0);
  add(make_message(Tag::kMapUpdate, MapUpdatePayload{4, sample_map()}, 120), 0);
  {
    SourceDonePayload p;
    p.rel = RelTag::kS;
    p.chunks_sent = 10;
    p.tuples_sent = 100000;
    p.chunks_to = {{3, 5}, {4, 6}};
    add(make_message(Tag::kSourceDone, p, 48), 1);
  }
  add(make_message(Tag::kSourceProgress, SourceProgressPayload{RelTag::kS, 77},
                   48),
      1);
  add(make_message(Tag::kDrainProbe, DrainProbePayload{2}, 48), 0);
  {
    DrainAckPayload p;
    p.epoch = 2;
    p.data_chunks_received = 10;
    p.data_chunks_forwarded = 3;
    p.received_from = {{1, 2}, {9, 1}};
    p.forwarded_to = {{2, 3}};
    add(make_message(Tag::kDrainAck, p, 48), 5);
  }
  add(make_signal(Tag::kBuildComplete), 0);
  add(make_message(Tag::kStartProbe, StartProbePayload{sample_map(), 4}, 128),
      0);
  add(make_message(Tag::kHistogramRequest, HistogramRequestPayload{1, 64, 2},
                   48),
      0);
  add(make_message(Tag::kHistogramReply,
                   HistogramReplyPayload{1, sample_histogram(), 2}, 96),
      5);
  {
    ReshuffleMovePayload p;
    p.plan = {PartitionMap::Entry{PosRange{0, 100}, {4}},
              PartitionMap::Entry{PosRange{100, 300}, {5, 6}}};
    p.round = 1;
    add(make_message(Tag::kReshuffleMove, p, 80), 0);
  }
  add(make_message(Tag::kReshuffleDone, ReshuffleDonePayload{3}, 48), 5);
  add(make_signal(Tag::kReportRequest), 0);
  add(make_message(Tag::kNodeReport,
                   NodeReportPayload{sample_metrics(), 0xfeedface, 21}, 96),
      5);
  {
    ResultChunkPayload p{sample_chunk(RelTag::kR), true, 4242};
    add(make_message(Tag::kResultChunk, p, 200), 5);
  }
  add(make_signal(Tag::kPing), 0);
  add(make_signal(Tag::kPong), 6);
  add(make_signal(Tag::kHeartbeatTick), 0);
  add(make_message(Tag::kRecoveryFence,
                   RecoveryFencePayload{3, {PosRange{0, 10}, PosRange{50, 60}}},
                   64),
      0);
  {
    RangeResetPayload p;
    p.epoch = 3;
    p.discard = {PosRange{1, 2}};
    p.zero_probe_results = true;
    p.new_range = PosRange{5, 10};
    p.retired = true;
    add(make_message(Tag::kRangeReset, p, 64), 0);
  }
  add(make_message(Tag::kRangeResetAck, RangeResetAckPayload{3}, 48), 5);
  {
    ReplayRequestPayload p;
    p.epoch = 3;
    p.rel = RelTag::kS;
    p.ranges = {PosRange{7, 9}};
    p.pause_after = true;
    add(make_message(Tag::kReplayRequest, p, 64), 0);
  }
  {
    ReplayDonePayload p;
    p.epoch = 3;
    p.rel = RelTag::kS;
    p.tuples_replayed = 55;
    p.chunks_to = {{2, 9}};
    p.chunks_sent_total = 100;
    add(make_message(Tag::kReplayDone, p, 48), 1);
  }
  {
    SchedulerSnapshotPayload p;
    p.generation = 12;
    p.phase = 4;
    p.probe_recovery = true;
    p.epoch = 3;
    p.map_version = 9;
    p.map = sample_map();
    p.joins = {5, 7, 9};
    p.sources = {1, 2};
    p.dead = {7};
    p.spilled = {9};
    p.pool_free = {11, 12};
    p.reshuffle_round = 2;
    p.drain_epoch = 6;
    p.source_chunks_to = {{1, {{5, 3}, {7, 1}}}, {2, {{9, 4}}}};
    p.metrics.t_start = 0.5;
    p.metrics.t_build_end = 1.5;
    p.metrics.split_time = 0.125;
    p.metrics.initial_join_nodes = 3;
    p.metrics.expansions = 2;
    p.metrics.final_join_nodes = 5;
    p.metrics.pool_exhausted = true;
    p.metrics.source_build_chunks = 40;
    p.metrics.extra_build_chunks = 7;
    p.metrics.failures_detected = 1;
    p.metrics.detection_latency_total = 0.75;
    p.metrics.detection_latency_max = 0.75;
    p.metrics.join_failures = 1;
    p.metrics.recoveries = 1;
    p.metrics.recovery_time_total = 0.25;
    p.metrics.replayed_build_tuples = 99;
    p.metrics.build_tuples_total = 12345;
    add(make_message(Tag::kSchedulerSnapshot, p, 256), 0);
  }
  add(make_message(Tag::kSchedulerHandoff, SchedulerHandoffPayload{2, 5}, 48),
      8);
  {
    SchedulerHandoffAckPayload p;
    p.generation = 2;
    p.done_mask = 0x5;  // R done + R stream started
    p.build_tuples = 1000;
    p.probe_tuples = 500;
    p.build_chunks = 10;
    p.probe_chunks = 5;
    p.chunks_to = {{5, 7}, {6, 8}};
    add(make_message(Tag::kSchedulerHandoffAck, p, 64), 1);
  }
  return all;
}

std::vector<std::uint8_t> encode_one(const Message& m) {
  Writer w;
  wire::encode_message(m, w);
  return w.take();
}

TEST(WireMessages, CatalogueCoversEveryTag) {
  // If a new Tag is added without a catalogue entry (and codec), this fails.
  std::vector<bool> seen(128, false);
  for (const Message& m : message_catalogue()) {
    EXPECT_TRUE(wire::known_tag(m.tag));
    seen[static_cast<std::size_t>(m.tag)] = true;
  }
  for (int tag = 0; tag < 128; ++tag) {
    EXPECT_EQ(wire::known_tag(tag), seen[static_cast<std::size_t>(tag)])
        << "tag " << tag << " known/catalogued mismatch";
  }
}

TEST(WireMessages, RoundTripEveryMessage) {
  for (const Message& original : message_catalogue()) {
    SCOPED_TRACE("tag " + std::to_string(original.tag));
    const std::vector<std::uint8_t> bytes = encode_one(original);
    Reader r(bytes);
    Message decoded;
    ASSERT_TRUE(wire::decode_message(r, decoded));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(decoded.tag, original.tag);
    EXPECT_EQ(decoded.from, original.from);
    EXPECT_EQ(decoded.wire_bytes, original.wire_bytes);
    EXPECT_EQ(decoded.has_payload(), original.has_payload());
    // Canonical-encoding equality doubles as deep payload equality.
    EXPECT_EQ(encode_one(decoded), bytes);
  }
}

TEST(WireMessages, SpotCheckDecodedFields) {
  // The byte-equality property above can't catch a codec that symmetrically
  // swaps two same-typed fields; pin a few semantically.
  ChunkPayload chunk{sample_chunk(RelTag::kS), true, 9};
  Message m = make_message(Tag::kDataChunk, chunk, 364);
  m.from = 17;
  const auto bytes = encode_one(m);
  Reader r(bytes);
  Message out;
  ASSERT_TRUE(wire::decode_message(r, out));
  const auto& p = out.as<ChunkPayload>();
  EXPECT_EQ(p.chunk.rel, RelTag::kS);
  ASSERT_EQ(p.chunk.size(), 3u);
  EXPECT_EQ(p.chunk.batch.id(0), 1u);
  EXPECT_EQ(p.chunk.batch.key(0), 100u);
  EXPECT_TRUE(p.forwarded);
  EXPECT_EQ(p.epoch, 9u);

  JoinInitPayload init{JoinRole::kReplica, PosRange{10, 500}, 3, 7};
  Message mi = make_message(Tag::kJoinInit, init, 64);
  mi.from = 0;
  const auto bytes_i = encode_one(mi);
  Reader ri(bytes_i);
  Message outi;
  ASSERT_TRUE(wire::decode_message(ri, outi));
  const auto& pi = outi.as<JoinInitPayload>();
  EXPECT_EQ(pi.role, JoinRole::kReplica);
  EXPECT_EQ(pi.range, (PosRange{10, 500}));
  EXPECT_EQ(pi.source_count, 3u);
  EXPECT_EQ(pi.op_id, 7u);
}

// --- batch codec (v2 columnar chunk bodies) ---

Message chunk_message(Chunk chunk) {
  ChunkPayload p;
  p.chunk = std::move(chunk);
  p.forwarded = false;
  p.epoch = 3;
  Message m = make_message(Tag::kDataChunk, p, 2000);
  m.from = 4;
  return m;
}

TEST(WireBatchCodec, LargeBatchRoundTripsAndRecomputesPositions) {
  std::mt19937_64 rng(0xBA7C4);
  for (const std::size_t rows : {1u, 2u, 255u, 256u, 4096u}) {
    Chunk chunk;
    chunk.rel = RelTag::kR;
    chunk.batch.reserve(rows);
    std::uint64_t last = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      // Duplicate runs exercise varint patterns the uniform draw misses.
      const std::uint64_t key = (i % 5 == 0) ? last : rng();
      last = key;
      chunk.batch.append(rng(), key);
    }
    const Message original = chunk_message(chunk);
    const auto bytes = encode_one(original);
    Reader r(bytes);
    Message out;
    ASSERT_TRUE(wire::decode_message(r, out)) << rows << " rows";
    const auto& decoded = out.as<ChunkPayload>().chunk;
    ASSERT_EQ(decoded.size(), rows);
    // Column equality plus the position column, which the codec does not
    // ship but recomputes from the keys on decode.
    EXPECT_EQ(decoded.batch, chunk.batch);
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(decoded.batch.position(i), position_of(decoded.batch.key(i)));
    }
    // Canonical: re-encoding the decoded message reproduces the bytes.
    EXPECT_EQ(encode_one(out), bytes);
  }
}

TEST(WireBatchCodec, ExtremeColumnValuesSurvive) {
  Chunk chunk;
  chunk.rel = RelTag::kS;
  chunk.batch = TupleBatch::from_tuples(
      {Tuple{0, 0}, Tuple{~0ull, ~0ull}, Tuple{1ull << 63, 1ull << 63},
       Tuple{0x8080808080808080ull, 0x7f7f7f7f7f7f7f7full}});
  const auto bytes = encode_one(chunk_message(chunk));
  Reader r(bytes);
  Message out;
  ASSERT_TRUE(wire::decode_message(r, out));
  EXPECT_EQ(out.as<ChunkPayload>().chunk.batch, chunk.batch);
}

TEST(WireBatchCodec, TruncationAndCorruptionAreTotal) {
  std::mt19937_64 rng(0xC0DEC);
  Chunk chunk;
  chunk.rel = RelTag::kR;
  for (std::size_t i = 0; i < 512; ++i) chunk.batch.append(rng(), rng());
  const auto bytes = encode_one(chunk_message(chunk));

  // Every truncation point: decode returns false or leaves a consistent
  // partial object; it never aborts or reads past the buffer (ASan in CI).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Reader r(bytes.data(), len);
    Message out;
    (void)wire::decode_message(r, out);
  }
  // A corrupt count varint must not allocate absurd column buffers.
  for (std::uint64_t flips = 0; flips < 2000; ++flips) {
    auto bad = bytes;
    bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    Reader r(bad);
    Message out;
    (void)wire::decode_message(r, out);
  }
}

TEST(WireMessages, PartitionMapInvariantsEnforcedOnDecode) {
  // A map whose entries do not cover the position space must be a decode
  // error, not an abort inside PartitionMap::from_entries.
  StartBuildPayload p{sample_map()};
  Message m = make_message(Tag::kStartBuild, p, 128);
  m.from = 0;
  auto bytes = encode_one(m);
  // Corrupt every byte position in turn; decode must never crash and the
  // result must be false or a byte-identical re-encode (reserved bits).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (std::uint8_t bit : {0x01, 0x80}) {
      auto bad = bytes;
      bad[i] ^= bit;
      Reader r(bad);
      Message out;
      (void)wire::decode_message(r, out);  // must simply not blow up
    }
  }
}

TEST(WireMessages, UnknownTagRejected) {
  Writer w;
  w.zigzag(9999);  // no such tag
  w.zigzag(0);
  w.varint(48);
  Reader r(w.data());
  Message out;
  EXPECT_FALSE(wire::decode_message(r, out));
}

// --- config codec ---

EhjaConfig sample_config() {
  EhjaConfig c;
  c.algorithm = Algorithm::kAdaptive;
  c.initial_join_nodes = 3;
  c.join_pool_nodes = 9;
  c.data_sources = 2;
  c.build_rel.tuple_count = 12345;
  c.build_rel.schema = Schema{64};
  c.build_rel.dist = DistributionSpec::Zipf(1.1, 5000);
  c.probe_rel.tuple_count = 54321;
  c.probe_rel.schema = Schema{64};
  c.probe_rel.dist = DistributionSpec::SmallDomain(2048);
  c.seed = 0xabcdef;
  c.chunk_tuples = 500;
  c.generation_slice_tuples = 250;
  c.node_hash_memory_bytes = 4 * kMiB;
  c.reshuffle_bins = 32;
  c.split_variant = SplitVariant::kLinearPointer;
  c.link.fault_jitter_sec = 0.25;
  c.link.fault_drop_prob = 0.125;
  c.faults.kills.push_back(KillSpec{});
  c.faults.kills.back().pool_index = 1;
  c.faults.kills.back().after_chunks = 10;
  c.faults.kills.push_back(KillSpec{});
  c.faults.kills.back().role = KillRole::kSource;
  c.faults.kills.back().pool_index = 0;
  c.faults.kills.back().after_chunks = 3;
  c.ft.force_enabled = true;
  c.ft.heartbeat_interval_sec = 0.025;
  c.ft.heartbeat_timeout_sec = 0.1;
  c.ft.detector = DetectorKind::kPhiAccrual;
  c.ft.phi_threshold = 6.0;
  c.ft.standby_scheduler = true;
  // v6 pipeline fields: a materialized build side (rows ride in the config
  // frame) plus output capture.
  c.capture_output = true;
  c.pipeline_stage = 2;
  auto data = std::make_shared<MaterializedRelation>();
  data->source_checksum = 0x1122334455667788ull;
  data->rows.reserve(c.build_rel.tuple_count);
  for (std::uint64_t i = 0; i < c.build_rel.tuple_count; ++i) {
    data->rows.push_back(Tuple{i * 3 + 1, ~i});
  }
  c.build_rel.data = std::move(data);
  return c;
}

TEST(WireConfig, RoundTripReencodesIdentically) {
  const EhjaConfig original = sample_config();
  Writer w;
  wire::encode_config(original, w);
  const auto bytes = w.take();

  Reader r(bytes);
  EhjaConfig decoded;
  ASSERT_TRUE(wire::decode_config(r, decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.trace, nullptr);  // trace sink never crosses processes

  Writer w2;
  wire::encode_config(decoded, w2);
  EXPECT_EQ(w2.data(), bytes);

  // Spot-check fields the run actually branches on.
  EXPECT_EQ(decoded.algorithm, Algorithm::kAdaptive);
  EXPECT_EQ(decoded.seed, 0xabcdefu);
  EXPECT_EQ(decoded.build_rel.tuple_count, 12345u);
  ASSERT_EQ(decoded.faults.kills.size(), 2u);
  EXPECT_EQ(decoded.faults.kills[0].role, KillRole::kJoin);
  EXPECT_EQ(decoded.faults.kills[0].after_chunks, 10u);
  EXPECT_EQ(decoded.faults.kills[1].role, KillRole::kSource);
  EXPECT_EQ(decoded.faults.kills[1].after_chunks, 3u);
  EXPECT_EQ(decoded.ft.heartbeat_timeout_sec, 0.1);
  EXPECT_EQ(decoded.ft.detector, DetectorKind::kPhiAccrual);
  EXPECT_EQ(decoded.ft.phi_threshold, 6.0);
  EXPECT_TRUE(decoded.ft.standby_scheduler);
  EXPECT_TRUE(decoded.recovery_enabled());
  EXPECT_TRUE(decoded.capture_output);
  EXPECT_EQ(decoded.pipeline_stage, 2u);
  ASSERT_TRUE(decoded.build_rel.data != nullptr);
  EXPECT_EQ(decoded.build_rel.data->source_checksum, 0x1122334455667788ull);
  EXPECT_EQ(decoded.build_rel.data->rows, original.build_rel.data->rows);
  EXPECT_EQ(decoded.probe_rel.data, nullptr);
}

TEST(WireConfig, TruncationNeverCrashes) {
  Writer w;
  wire::encode_config(sample_config(), w);
  const auto bytes = w.take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Reader r(bytes.data(), len);
    EhjaConfig out;
    (void)wire::decode_config(r, out);  // false or partial -- never UB
  }
}

// --- frame layer ---

TEST(WireFrames, RoundTripAndIncrementalFeed) {
  Writer w;
  w.varint(1234);
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameKind::kSpawn, w.data());

  // Whole-buffer parse.
  std::size_t consumed = 0;
  wire::Frame f;
  ASSERT_EQ(wire::try_parse_frame(stream.data(), stream.size(), consumed, f),
            wire::FrameStatus::kFrame);
  EXPECT_EQ(consumed, stream.size());
  EXPECT_EQ(f.kind, wire::FrameKind::kSpawn);
  EXPECT_EQ(f.body, w.data());

  // Byte-at-a-time: kNeedMore until the last byte arrives.
  for (std::size_t len = 0; len + 1 < stream.size(); ++len) {
    EXPECT_EQ(wire::try_parse_frame(stream.data(), len, consumed, f),
              wire::FrameStatus::kNeedMore);
  }
}

TEST(WireFrames, BackToBackFramesParseInOrder) {
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameKind::kReady, {});
  Writer w;
  w.zigzag(-5);
  wire::append_frame(stream, wire::FrameKind::kAnnounce, w.data());

  std::size_t consumed = 0;
  wire::Frame f;
  ASSERT_EQ(wire::try_parse_frame(stream.data(), stream.size(), consumed, f),
            wire::FrameStatus::kFrame);
  EXPECT_EQ(f.kind, wire::FrameKind::kReady);
  const std::size_t first = consumed;
  ASSERT_EQ(wire::try_parse_frame(stream.data() + first,
                                  stream.size() - first, consumed, f),
            wire::FrameStatus::kFrame);
  EXPECT_EQ(f.kind, wire::FrameKind::kAnnounce);
  EXPECT_EQ(first + consumed, stream.size());
}

TEST(WireFrames, CorruptionIsDetected) {
  Writer w;
  for (int i = 0; i < 64; ++i) w.varint(static_cast<std::uint64_t>(i) * 7);
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameKind::kActorMsg, w.data());

  std::size_t consumed = 0;
  wire::Frame f;
  std::string err;

  {  // bad magic
    auto bad = stream;
    bad[0] ^= 0xff;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
  }
  {  // bad version
    auto bad = stream;
    bad[4] ^= 0xff;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
  }
  {  // bad kind
    auto bad = stream;
    bad[5] = 0xee;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
  }
  {  // absurd length must error before any allocation happens
    auto bad = stream;
    bad[8] = 0xff;
    bad[9] = 0xff;
    bad[10] = 0xff;
    bad[11] = 0x7f;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
  }
  // Any bit flip in the body is caught by the CRC.
  for (std::size_t i = wire::kFrameHeaderBytes; i < stream.size(); ++i) {
    auto bad = stream;
    bad[i] ^= 0x10;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError)
        << "body flip at offset " << i << " escaped the CRC";
  }
}

// --- forward compatibility ---
//
// A frame from a *newer* build (higher wire version, or a FrameKind this
// build has never heard of) must be a clean, described decode error -- the
// serve layer turns it into a kQueryRejected farewell -- never an abort.
// The header is not covered by the CRC, so these edits isolate exactly the
// version/kind checks.

TEST(WireFrames, NewerVersionIsDescribedDecodeError) {
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameKind::kReady, {});
  std::size_t consumed = 0;
  wire::Frame f;
  std::string err;

  {  // one version ahead: "newer", so the peer can say so in its reject
    auto bad = stream;
    bad[4] = wire::kWireVersion + 1;
    ASSERT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
    EXPECT_NE(err.find("newer"), std::string::npos) << err;
  }
  {  // one version behind: a plain mismatch, not "newer"
    ASSERT_GE(wire::kWireVersion, 2);
    auto bad = stream;
    bad[4] = wire::kWireVersion - 1;
    err.clear();
    ASSERT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
    EXPECT_EQ(err.find("newer"), std::string::npos) << err;
    EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
  }
}

TEST(WireFrames, UnknownFutureFrameKindIsDecodeError) {
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameKind::kReady, {});
  std::size_t consumed = 0;
  wire::Frame f;
  std::string err;
  for (const std::uint8_t kind :
       {static_cast<std::uint8_t>(wire::kMaxFrameKind + 1),
        static_cast<std::uint8_t>(200)}) {
    auto bad = stream;
    bad[5] = kind;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError)
        << "future kind " << int(kind) << " parsed";
  }
  // Every kind this build *does* define still parses (0 is below kHello).
  {
    auto bad = stream;
    bad[5] = 0;
    EXPECT_EQ(wire::try_parse_frame(bad.data(), bad.size(), consumed, f, &err),
              wire::FrameStatus::kError);
  }
  for (std::uint8_t kind = 1; kind <= wire::kMaxFrameKind; ++kind) {
    auto ok = stream;
    ok[5] = kind;
    EXPECT_EQ(wire::try_parse_frame(ok.data(), ok.size(), consumed, f, &err),
              wire::FrameStatus::kFrame)
        << "known kind " << int(kind) << " rejected";
  }
}

// --- fuzz loop ---
//
// Deterministic seed so failures reproduce.  The assertion is the totality
// contract itself: whatever bytes arrive, decoders return instead of
// crashing; ASan (CI) turns any out-of-bounds read into a hard failure.

TEST(WireFuzz, MutatedMessagesNeverMisbehave) {
  std::mt19937_64 rng(0xEA51DE);
  const std::vector<Message> catalogue = message_catalogue();
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.reserve(catalogue.size());
  for (const Message& m : catalogue) seeds.push_back(encode_one(m));

  for (int iter = 0; iter < 4000; ++iter) {
    auto bytes = seeds[rng() % seeds.size()];
    switch (rng() % 3) {
      case 0:  // truncate
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      case 1:  // flip 1-4 bits
        for (std::uint64_t flips = 1 + rng() % 4; flips > 0 && !bytes.empty();
             --flips) {
          bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(
              1u << (rng() % 8));
        }
        break;
      default:  // garbage tail
        for (std::uint64_t extra = rng() % 16; extra > 0; --extra) {
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
    }
    Reader r(bytes);
    Message out;
    (void)wire::decode_message(r, out);
  }
}

TEST(WireFuzz, MutatedFramesNeverMisbehave) {
  std::mt19937_64 rng(0xF4A3E5);
  Writer w;
  for (int i = 0; i < 200; ++i) w.varint(rng());
  std::vector<std::uint8_t> frame;
  wire::append_frame(frame, wire::FrameKind::kActorMsg, w.data());

  for (int iter = 0; iter < 4000; ++iter) {
    auto bytes = frame;
    if (rng() % 2 == 0) {
      bytes.resize(rng() % (bytes.size() + 1));
    } else {
      for (std::uint64_t flips = 1 + rng() % 8; flips > 0; --flips) {
        bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1u
                                                                 << (rng() % 8));
      }
    }
    std::size_t consumed = 0;
    wire::Frame f;
    (void)wire::try_parse_frame(bytes.data(), bytes.size(), consumed, f);
  }

  // Pure noise, incrementally grown, as a cold TCP buffer would look.
  std::vector<std::uint8_t> noise;
  for (int i = 0; i < 2000; ++i) {
    noise.push_back(static_cast<std::uint8_t>(rng()));
    std::size_t consumed = 0;
    wire::Frame f;
    (void)wire::try_parse_frame(noise.data(), noise.size(), consumed, f);
  }
}

}  // namespace
}  // namespace ehja
