// Failure injection: pool exhaustion, pathological key distributions,
// degenerate configurations.  The protocol must degrade (spill) rather than
// crash or lose tuples.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

EhjaConfig tight_config(Algorithm algorithm) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = 2;
  config.join_pool_nodes = 3;  // only ONE potential node
  config.data_sources = 2;
  config.build_rel.tuple_count = 20'000;
  config.probe_rel.tuple_count = 20'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(1024);
  config.probe_rel.dist = DistributionSpec::SmallDomain(1024);
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  // Budget for ~1000 tuples per node: 3 nodes hold 3000 of 20000 tuples.
  config.node_hash_memory_bytes =
      1000 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 64;
  return config;
}

class PoolExhaustionSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PoolExhaustionSuite, DegradesToSpillingAndStaysCorrect) {
  const auto config = tight_config(GetParam());
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_TRUE(run.metrics.pool_exhausted);
  // At least one node had to spill.
  std::uint64_t spilled = 0;
  for (const auto& node : run.metrics.nodes) {
    spilled += node.spilled_build_tuples;
  }
  EXPECT_GT(spilled, 0u);
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PoolExhaustionSuite,
                         ::testing::Values(Algorithm::kSplit,
                                           Algorithm::kReplicate,
                                           Algorithm::kHybrid),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           std::string n = algorithm_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FailureTest, SourcesFinishBeforeOverflowWithEmptyPool) {
  // Regression (found by RandomConfigFuzz seed 10): every source finishes
  // the build before the first memory-full arrives, and the pool is empty.
  // The spill switch resolves the request without starting an expansion
  // op, so the scheduler itself must re-arm the build drain or the run
  // wedges.
  EhjaConfig config;
  config.algorithm = Algorithm::kReplicate;
  config.initial_join_nodes = 2;
  config.join_pool_nodes = 2;  // empty potential pool
  config.data_sources = 5;
  config.build_rel.tuple_count = 9'000;
  config.probe_rel.tuple_count = 9'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(1575);
  config.probe_rel.dist = config.build_rel.dist;
  config.chunk_tuples = 1000;
  config.generation_slice_tuples = 1000;
  config.node_hash_memory_bytes =
      2000 * tuple_footprint(config.build_rel.schema);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_TRUE(run.metrics.pool_exhausted);
}

TEST(FailureTest, NoPotentialNodesAtAll) {
  auto config = tight_config(Algorithm::kSplit);
  config.join_pool_nodes = config.initial_join_nodes;  // empty pool
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_TRUE(run.metrics.pool_exhausted);
  EXPECT_EQ(run.metrics.expansions, 0u);
}

TEST(FailureTest, AllKeysIdentical) {
  // Every tuple hashes to one position: the ultimate skew.  The join output
  // is the full cross product.
  auto config = tight_config(Algorithm::kReplicate);
  config.build_rel.tuple_count = 3'000;
  config.probe_rel.tuple_count = 3'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(1);
  config.probe_rel.dist = DistributionSpec::SmallDomain(1);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join().matches, 9'000'000u);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(FailureTest, AllKeysIdenticalSplitCannotSubdivide) {
  // The split pointer eventually reaches a one-position-wide hot bucket it
  // cannot split further; the node must fall back to spilling.
  auto config = tight_config(Algorithm::kSplit);
  config.join_pool_nodes = 10;
  config.build_rel.tuple_count = 5'000;
  config.probe_rel.tuple_count = 1'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(1);
  config.probe_rel.dist = DistributionSpec::SmallDomain(1);
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(FailureTest, EmptyProbeRelation) {
  auto config = tight_config(Algorithm::kHybrid);
  config.probe_rel.tuple_count = 1;  // effectively empty
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(FailureTest, TinyBuildRelation) {
  auto config = tight_config(Algorithm::kSplit);
  config.build_rel.tuple_count = 3;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.expansions, 0u);
}

TEST(FailureTest, SingleNodeSingleSource) {
  auto config = tight_config(Algorithm::kOutOfCore);
  config.initial_join_nodes = 1;
  config.join_pool_nodes = 1;
  config.data_sources = 1;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(FailureTest, ChunkLargerThanRelation) {
  auto config = tight_config(Algorithm::kReplicate);
  config.build_rel.tuple_count = 900;
  config.probe_rel.tuple_count = 900;
  config.chunk_tuples = 100'000;
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
}

TEST(FailureDeathTest, InvalidConfigAborts) {
  EhjaConfig config;
  config.initial_join_nodes = 30;
  config.join_pool_nodes = 24;
  EXPECT_DEATH(config.validate(), "pool");
}

TEST(FailureDeathTest, ZeroSourcesAborts) {
  EhjaConfig config;
  config.data_sources = 0;
  EXPECT_DEATH(config.validate(), "");
}

}  // namespace
}  // namespace ehja
