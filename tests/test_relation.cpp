// Unit tests for tuples, schemas, chunks, relations and match signatures.
#include <gtest/gtest.h>

#include <set>

#include "relation/chunk.hpp"
#include "relation/relation.hpp"
#include "relation/tuple.hpp"

namespace ehja {
namespace {

TEST(SchemaTest, PayloadBytes) {
  EXPECT_EQ(Schema{100}.payload_bytes(), 84u);
  EXPECT_EQ(Schema{16}.payload_bytes(), 0u);
}

TEST(SchemaTest, TupleFootprintIncludesOverhead) {
  EXPECT_EQ(tuple_footprint(Schema{100}), 100u + kHashEntryOverheadBytes);
}

TEST(ChunkTest, WireBytesScaleWithSchema) {
  Chunk chunk;
  for (int i = 0; i < 10; ++i) chunk.batch.append(i, i);
  constexpr std::size_t kHeader =
      wire::kFrameHeaderBytes + wire::kChunkEnvelopeBytes;
  EXPECT_EQ(chunk.wire_bytes(Schema{100}), kHeader + 1000u);
  EXPECT_EQ(chunk.wire_bytes(Schema{400}), kHeader + 4000u);
}

TEST(ChunkTest, ChunksForRoundsUp) {
  EXPECT_EQ(chunks_for(0, 100), 0u);
  EXPECT_EQ(chunks_for(1, 100), 1u);
  EXPECT_EQ(chunks_for(100, 100), 1u);
  EXPECT_EQ(chunks_for(101, 100), 2u);
  EXPECT_EQ(chunks_for(10'000'000, 10'000), 1000u);
}

TEST(RelationTest, AppendChunk) {
  Relation rel(RelTag::kR, Schema{100});
  Chunk chunk;
  chunk.rel = RelTag::kR;
  chunk.batch = TupleBatch::from_tuples({{1, 10}, {2, 20}});
  rel.append(chunk);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[1].key, 20u);
  EXPECT_EQ(rel.total_bytes(), 200u);
}

TEST(MatchSignatureTest, OrderIndependentSum) {
  const std::uint64_t ab = match_signature(1, 2) + match_signature(3, 4);
  const std::uint64_t ba = match_signature(3, 4) + match_signature(1, 2);
  EXPECT_EQ(ab, ba);
}

TEST(MatchSignatureTest, AsymmetricInArguments) {
  // (r, s) and (s, r) are different pairs and must sign differently.
  EXPECT_NE(match_signature(1, 2), match_signature(2, 1));
}

TEST(MatchSignatureTest, NoObviousCollisions) {
  std::set<std::uint64_t> sigs;
  for (std::uint64_t r = 0; r < 100; ++r) {
    for (std::uint64_t s = 0; s < 100; ++s) {
      sigs.insert(match_signature(r, s));
    }
  }
  EXPECT_EQ(sigs.size(), 10000u);
}

TEST(RelTagTest, Names) {
  EXPECT_STREQ(rel_name(RelTag::kR), "R");
  EXPECT_STREQ(rel_name(RelTag::kS), "S");
}

}  // namespace
}  // namespace ehja
