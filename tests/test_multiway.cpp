// Randomized multi-way pipeline fuzz (ctest label: pipeline).
//
// Left-deep plans of 2-4 stages are drawn at random -- every stage picks
// its own algorithm (all five) and key distribution (uniform / small-domain
// / zipf) -- and executed with real materialized hand-offs, then compared
// against the serial_multi_join oracle: same matches, same checksum, and
// byte-identical final output rows.  The determinism pin runs one fixed
// plan on every runtime (sim, threads, sockets) and demands the identical
// byte-for-byte answer, which is what makes the pipeline's canonical
// hand-off order trustworthy as a recovery replay substrate.
//
// Socket runs fork real worker processes, so this binary carries the same
// worker-dispatching main() as test_socket.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "runtime/socket_runtime.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/tpch_like.hpp"

namespace ehja {
namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kSplit, Algorithm::kReplicate, Algorithm::kHybrid,
    Algorithm::kOutOfCore, Algorithm::kAdaptive};

DistributionSpec random_dist(SplitMix64& rng, bool allow_uniform) {
  switch (rng.next_below(allow_uniform ? 3 : 2)) {
    case 0:
      return DistributionSpec::SmallDomain(256 << rng.next_below(4));
    case 1:
      return DistributionSpec::Zipf(1.05 + 0.2 * rng.next_double(),
                                    512 << rng.next_below(3));
    default:
      // Uniform over the full 64-bit key space: matches are astronomically
      // unlikely, so this exercises the empty-intermediate short-circuit.
      return DistributionSpec::Uniform();
  }
}

PipelinePlan random_plan(SplitMix64& rng) {
  PipelinePlan plan;
  plan.seed = rng.next_u64();
  plan.join_pool_nodes = 8;
  plan.data_sources = 1 + static_cast<std::uint32_t>(rng.next_below(3));
  plan.chunk_tuples = 500;
  plan.intermediate_tuple_bytes = 200;
  // Tight enough that larger intermediates force expansion against the
  // shared budget, roomy enough that tiny stages stay single-node.
  plan.node_hash_memory_bytes = 2500 * tuple_footprint(Schema{200});
  plan.first_build =
      RelationSpec{RelTag::kR, 2'000 + rng.next_below(6'000), Schema{100},
                   random_dist(rng, /*allow_uniform=*/false), nullptr};

  const std::size_t stage_count = 2 + rng.next_below(3);  // 2-4
  for (std::size_t k = 0; k < stage_count; ++k) {
    PipelineStage stage;
    stage.probe =
        RelationSpec{RelTag::kS, 3'000 + rng.next_below(6'000), Schema{100},
                     random_dist(rng, /*allow_uniform=*/true), nullptr};
    stage.algorithm =
        kAllAlgorithms[rng.next_below(std::size(kAllAlgorithms))];
    stage.initial_join_nodes =
        1 + static_cast<std::uint32_t>(rng.next_below(3));
    stage.link_dist = random_dist(rng, /*allow_uniform=*/false);
    plan.stages.push_back(stage);
  }
  return plan;
}

void expect_matches_oracle(const PipelinePlan& plan,
                           const PipelineResult& pipeline) {
  const MultiJoinResult oracle = serial_multi_join(plan);
  ASSERT_EQ(pipeline.stages.size(), oracle.stage_results.size());
  for (std::size_t k = 0; k < pipeline.stages.size(); ++k) {
    if (pipeline.stages[k].executed) {
      EXPECT_EQ(pipeline.stages[k].run.join(), oracle.stage_results[k])
          << "stage " << k;
    } else {
      EXPECT_EQ(oracle.stage_results[k], JoinResult{}) << "stage " << k;
    }
  }
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  EXPECT_LE(pipeline.peak_join_nodes, plan.join_pool_nodes);
}

// --- randomized fuzz on the sim runtime (dense coverage) ---

TEST(MultiwayFuzz, RandomPlansMatchOracleOnSim) {
  SplitMix64 rng(20040607, /*stream=*/0x3157a6e);
  for (int i = 0; i < 10; ++i) {
    const PipelinePlan plan = random_plan(rng);
    SCOPED_TRACE("plan " + std::to_string(i) + ", " +
                 std::to_string(plan.stages.size()) + " stages, seed " +
                 std::to_string(plan.seed));
    expect_matches_oracle(plan, run_pipeline(plan, RuntimeKind::kSim));
  }
}

// --- the same space on real threads (races, arbitrary delivery order) ---

TEST(MultiwayFuzz, RandomPlansMatchOracleOnThreads) {
  SplitMix64 rng(20040607, /*stream=*/0x7412ead);
  for (int i = 0; i < 4; ++i) {
    const PipelinePlan plan = random_plan(rng);
    SCOPED_TRACE("plan " + std::to_string(i) + ", " +
                 std::to_string(plan.stages.size()) + " stages, seed " +
                 std::to_string(plan.seed));
    expect_matches_oracle(plan, run_pipeline(plan, RuntimeKind::kThread));
  }
}

// --- per-algorithm 3-stage pins on both real runtimes ---

PipelinePlan algo_plan(Algorithm algorithm) {
  PipelinePlan plan;
  plan.seed = 7;
  plan.join_pool_nodes = 6;
  plan.data_sources = 2;
  plan.chunk_tuples = 500;
  plan.node_hash_memory_bytes = 2000 * tuple_footprint(Schema{200});
  plan.first_build = RelationSpec{RelTag::kR, 6'000, Schema{100},
                                  DistributionSpec::SmallDomain(2048), nullptr};
  for (std::size_t k = 0; k < 3; ++k) {
    PipelineStage stage;
    stage.probe = RelationSpec{RelTag::kS, 8'000, Schema{100},
                               DistributionSpec::SmallDomain(2048), nullptr};
    stage.algorithm = algorithm;
    stage.initial_join_nodes = 2;
    stage.link_dist = DistributionSpec::SmallDomain(2048);
    plan.stages.push_back(stage);
  }
  return plan;
}

std::string algo_test_name(const ::testing::TestParamInfo<Algorithm>& info) {
  std::string n = algorithm_name(info.param);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class MultiwayThreadSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MultiwayThreadSuite, ThreeStagesMatchOracle) {
  const PipelinePlan plan = algo_plan(GetParam());
  expect_matches_oracle(plan, run_pipeline(plan, RuntimeKind::kThread));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MultiwayThreadSuite,
                         ::testing::ValuesIn(kAllAlgorithms), algo_test_name);

class MultiwaySocketSuite : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MultiwaySocketSuite, ThreeStagesMatchOracleAcrossProcesses) {
  const PipelinePlan plan = algo_plan(GetParam());
  expect_matches_oracle(plan, run_pipeline(plan, RuntimeKind::kSocket));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MultiwaySocketSuite,
                         ::testing::ValuesIn(kAllAlgorithms), algo_test_name);

// --- determinism pin: one plan, every runtime, identical bytes ---

TEST(MultiwayDeterminism, SameSeedSameBytesAcrossRuntimes) {
  const PipelinePlan plan = algo_plan(Algorithm::kHybrid);
  const PipelineResult sim_a = run_pipeline(plan, RuntimeKind::kSim);
  const PipelineResult sim_b = run_pipeline(plan, RuntimeKind::kSim);
  const PipelineResult threads = run_pipeline(plan, RuntimeKind::kThread);
  const PipelineResult sockets = run_pipeline(plan, RuntimeKind::kSocket);

  EXPECT_EQ(sim_a.final, sim_b.final);
  EXPECT_EQ(sim_a.final_rows, sim_b.final_rows);
  EXPECT_EQ(sim_a.final, threads.final);
  EXPECT_EQ(sim_a.final_rows, threads.final_rows);
  EXPECT_EQ(sim_a.final, sockets.final);
  EXPECT_EQ(sim_a.final_rows, sockets.final_rows);
  // The hand-off checksums chain identically too.
  ASSERT_EQ(sim_a.stages.size(), sockets.stages.size());
  for (std::size_t k = 0; k < sim_a.stages.size(); ++k) {
    EXPECT_EQ(sim_a.stages[k].output_checksum,
              sockets.stages[k].output_checksum);
    EXPECT_EQ(sim_a.stages[k].build_input_checksum,
              sockets.stages[k].build_input_checksum);
  }
}

// --- the TPC-H-shaped workload behind bench_pipeline ---

TEST(TpchLikeTest, UniformChainValidatesAndMatchesOracle) {
  TpchLikeOptions options;
  options.scale = 0.1;
  const PipelinePlan plan = tpch_like_plan(options);
  EXPECT_EQ(plan.validate_or_error(), std::nullopt);
  const PipelineResult pipeline = run_pipeline(plan);
  EXPECT_GT(pipeline.final.matches, 0u);
  expect_matches_oracle(plan, pipeline);
}

TEST(TpchLikeTest, SkewedChainStillJoins) {
  TpchLikeOptions options;
  options.scale = 0.1;
  options.skew = 1.2;
  const PipelinePlan plan = tpch_like_plan(options);
  EXPECT_EQ(plan.validate_or_error(), std::nullopt);
  const PipelineResult pipeline = run_pipeline(plan);
  // Zipf FKs against the near-uniform PK side must actually collide, and
  // skew fans hot keys out into larger intermediates than the uniform
  // chain's independence estimate.
  EXPECT_GT(pipeline.stages[0].output_rows, 0u);
  EXPECT_GT(pipeline.final.matches, 0u);
  expect_matches_oracle(plan, pipeline);
}

// --- SIGKILL of a real worker process mid-stage-2 build, then recovery ---
//
// On the socket runtime the chunk-triggered kill is a literal
// raise(SIGKILL) inside the victim worker process; the pipeline must
// recover the stage and the full chain must still match the oracle.

TEST(MultiwaySocketChaos, WorkerSigkilledMidStage2BuildStillMatchesOracle) {
  PipelinePlan plan = algo_plan(Algorithm::kHybrid);
  // Wall-clock heartbeats: generous timeout so sanitizer scheduling noise
  // cannot fake a second death (same knobs as test_socket's kill tests).
  plan.ft.heartbeat_interval_sec = 0.05;
  plan.ft.heartbeat_timeout_sec = 1.0;
  KillSpec kill;
  kill.pool_index = 1;
  kill.after_chunks = 4;
  plan.stages[1].faults.kills.push_back(kill);

  const PipelineResult pipeline = run_pipeline(plan, RuntimeKind::kSocket);
  const MultiJoinResult oracle = serial_multi_join(plan);
  EXPECT_EQ(pipeline.final, oracle.final);
  EXPECT_EQ(pipeline.final_rows, oracle.final_rows);
  const RunMetrics& wounded = pipeline.stages[1].run.metrics;
  EXPECT_EQ(wounded.failures_injected, 1u);
  EXPECT_GE(wounded.failures_detected, 1u);
  EXPECT_GE(wounded.recoveries, 1u);
  // Stages up- and downstream of the death ran clean.
  EXPECT_EQ(pipeline.stages[0].run.metrics.failures_injected, 0u);
  EXPECT_EQ(pipeline.stages[2].run.metrics.failures_injected, 0u);
}

}  // namespace
}  // namespace ehja

// Custom main: a forked worker re-executes this binary with
// --ehja-worker=N --ehja-coordinator-port=P; it must become a runtime
// worker, not a gtest run (see test_socket.cpp).
int main(int argc, char** argv) {
  if (const auto worker_exit = ehja::maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
