// Stress and fuzz coverage.
//
// RandomConfigFuzz: 24 pseudo-random protocol configurations (algorithm,
// variant, distribution, node counts, chunk sizes, budgets drawn from a
// seeded RNG) -- every one must match the serial oracle and conserve build
// tuples.  This is the sweep that catches interaction bugs the hand-picked
// matrices miss.
//
// ThreadRuntime soak: many actors exchanging many messages with dynamic
// spawning, repeated to shake out lost-wakeup/termination races (the class
// of bug fixed in ThreadRuntime::request_stop).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/driver.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

EhjaConfig random_config(std::uint64_t fuzz_seed) {
  SplitMix64 rng(fuzz_seed, /*stream=*/0xf22);
  EhjaConfig config;
  switch (rng.next_below(4)) {
    case 0: config.algorithm = Algorithm::kSplit; break;
    case 1: config.algorithm = Algorithm::kReplicate; break;
    case 2: config.algorithm = Algorithm::kHybrid; break;
    default: config.algorithm = Algorithm::kOutOfCore; break;
  }
  config.split_variant = rng.next_below(2) == 0
                             ? SplitVariant::kRequesterMidpoint
                             : SplitVariant::kLinearPointer;
  config.join_pool_nodes = 2 + static_cast<std::uint32_t>(rng.next_below(20));
  config.initial_join_nodes =
      1 + static_cast<std::uint32_t>(rng.next_below(config.join_pool_nodes));
  config.data_sources = 1 + static_cast<std::uint32_t>(rng.next_below(5));
  config.build_rel.tuple_count = 2'000 + rng.next_below(20'000);
  config.probe_rel.tuple_count = 2'000 + rng.next_below(20'000);
  switch (rng.next_below(4)) {
    case 0:
      config.build_rel.dist = DistributionSpec::Uniform();
      break;
    case 1:
      config.build_rel.dist =
          DistributionSpec::Gaussian(0.3 + 0.4 * (fuzz_seed % 7) / 7.0,
                                     1e-4 + 1e-2 * (fuzz_seed % 3));
      break;
    case 2:
      config.build_rel.dist =
          DistributionSpec::Zipf(1.05 + 0.3 * (fuzz_seed % 5) / 5.0,
                                 100 + rng.next_below(5000));
      break;
    default:
      config.build_rel.dist =
          DistributionSpec::SmallDomain(16 + rng.next_below(8192));
      break;
  }
  config.probe_rel.dist = config.build_rel.dist;
  config.chunk_tuples = 50 + static_cast<std::uint32_t>(rng.next_below(2000));
  config.generation_slice_tuples = config.chunk_tuples;
  const std::uint64_t budget_tuples = 200 + rng.next_below(4000);
  config.node_hash_memory_bytes =
      budget_tuples * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 1u << (6 + rng.next_below(9));
  config.balanced_initial_partition = rng.next_below(3) == 0;
  config.partition_sample = 5'000;
  config.seed = fuzz_seed * 7919 + 13;
  // Respect the validated invariants the generator above could violate.
  if (config.reshuffle_bins < config.join_pool_nodes) {
    config.reshuffle_bins = config.join_pool_nodes;
  }
  return config;
}

class RandomConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigFuzz, MatchesOracleAndConserves) {
  const EhjaConfig config = random_config(GetParam());
  SCOPED_TRACE(config.to_string());
  const RunResult run = run_ehja(config);
  EXPECT_EQ(run.join(), reference_join(config));
  EXPECT_EQ(run.metrics.build_tuples_total, config.build_rel.tuple_count);
  EXPECT_EQ(run.metrics.final_join_nodes,
            run.metrics.initial_join_nodes + run.metrics.expansions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------- thread soak

constexpr int kToken = 1;
constexpr int kSpawnWave = 2;

// A ring of actors passing tokens; the root also spawns a second wave of
// actors mid-run.  Exercises concurrent spawn/send/stop.
class RingNode final : public Actor {
 public:
  RingNode(std::atomic<int>& hops, int limit) : hops_(&hops), limit_(limit) {}
  void set_next(ActorId next) { next_ = next; }
  void on_message(const Message& msg) override {
    if (msg.tag != kToken) return;
    const int total = hops_->fetch_add(1) + 1;
    if (total >= limit_) {
      rt().request_stop();
      return;
    }
    if (next_ != kInvalidActor) {
      send(next_, make_signal(kToken));
    }
  }

 private:
  std::atomic<int>* hops_;
  int limit_;
  ActorId next_ = kInvalidActor;
};

class RingRoot final : public Actor {
 public:
  RingRoot(std::atomic<int>& hops, int limit, int ring_size)
      : hops_(&hops), limit_(limit), ring_size_(ring_size) {}
  void on_start() override { defer(make_signal(kSpawnWave)); }
  void on_message(const Message& msg) override {
    if (msg.tag == kSpawnWave) {
      // Build the ring dynamically, then inject several tokens.
      std::vector<RingNode*> nodes;
      std::vector<ActorId> ids;
      for (int i = 0; i < ring_size_; ++i) {
        auto node = std::make_unique<RingNode>(*hops_, limit_);
        nodes.push_back(node.get());
        ids.push_back(rt().spawn(
            static_cast<NodeId>(i % rt().cluster().node_count()),
            std::move(node)));
      }
      for (int i = 0; i < ring_size_; ++i) {
        nodes[static_cast<std::size_t>(i)]->set_next(
            ids[static_cast<std::size_t>((i + 1) % ring_size_)]);
      }
      for (int i = 0; i < 4; ++i) {
        send(ids[static_cast<std::size_t>(i % ring_size_)],
             make_signal(kToken));
      }
    }
  }

 private:
  std::atomic<int>* hops_;
  int limit_;
  int ring_size_;
};

TEST(ThreadSoakTest, TokenRingWithDynamicSpawningTerminates) {
  for (int round = 0; round < 5; ++round) {
    ThreadRuntime rt(make_uniform_cluster(4));
    std::atomic<int> hops{0};
    rt.spawn(0, std::make_unique<RingRoot>(hops, /*limit=*/500,
                                           /*ring_size=*/16));
    rt.run();
    EXPECT_GE(hops.load(), 500);
  }
}

TEST(ThreadSoakTest, RepeatedFullJoinsOnThreads) {
  // The whole protocol, three times back to back on real threads.
  EhjaConfig config;
  config.algorithm = Algorithm::kHybrid;
  config.initial_join_nodes = 2;
  config.join_pool_nodes = 10;
  config.data_sources = 2;
  config.build_rel.tuple_count = 10'000;
  config.probe_rel.tuple_count = 10'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(2048);
  config.probe_rel.dist = config.build_rel.dist;
  config.chunk_tuples = 400;
  config.generation_slice_tuples = 400;
  config.node_hash_memory_bytes =
      1200 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 256;
  const JoinResult expected = reference_join(config);
  for (int round = 0; round < 3; ++round) {
    const RunResult run = run_ehja(config, RuntimeKind::kThread);
    EXPECT_EQ(run.join(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace ehja
