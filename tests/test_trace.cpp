// Tests for the tracing subsystem and its integration into a full run.
#include <gtest/gtest.h>

#include <sstream>

#include "core/driver.hpp"
#include "trace/trace.hpp"

namespace ehja {
namespace {

TEST(TraceSinkTest, RecordsInOrder) {
  TraceSink sink;
  sink.emit(1.0, TraceKind::kPhase, 0, 0, "build");
  sink.emit(2.0, TraceKind::kExpansion, 3, 9);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "build");
  EXPECT_EQ(events[1].a, 3);
  EXPECT_EQ(events[1].b, 9);
}

TEST(TraceSinkTest, OfKindFilters) {
  TraceSink sink;
  sink.emit(1.0, TraceKind::kPhase);
  sink.emit(2.0, TraceKind::kExpansion);
  sink.emit(3.0, TraceKind::kExpansion);
  EXPECT_EQ(sink.of_kind(TraceKind::kExpansion).size(), 2u);
  EXPECT_EQ(sink.of_kind(TraceKind::kSpillSwitch).size(), 0u);
}

TEST(TraceSinkTest, CsvHasHeaderAndRows) {
  TraceSink sink;
  sink.emit(0.5, TraceKind::kMemSample, 7, 4096);
  std::ostringstream os;
  sink.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,kind,a,b,detail"), std::string::npos);
  EXPECT_NE(csv.find("mem_sample"), std::string::npos);
  EXPECT_NE(csv.find("4096"), std::string::npos);
}

TEST(TraceSinkTest, ClearEmpties) {
  TraceSink sink;
  sink.emit(1.0, TraceKind::kPhase);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

// ------------------------------------------------------- integration trace

EhjaConfig traced_config(Algorithm algorithm, TraceSink* sink) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = 2;
  config.join_pool_nodes = 12;
  config.data_sources = 2;
  config.build_rel.tuple_count = 15'000;
  config.probe_rel.tuple_count = 15'000;
  config.build_rel.dist = DistributionSpec::SmallDomain(4096);
  config.probe_rel.dist = DistributionSpec::SmallDomain(4096);
  config.chunk_tuples = 500;
  config.generation_slice_tuples = 500;
  config.node_hash_memory_bytes =
      1500 * tuple_footprint(config.build_rel.schema);
  config.reshuffle_bins = 4096;
  config.trace = sink;
  return config;
}

TEST(TraceIntegrationTest, PhasesAppearInOrder) {
  TraceSink sink;
  run_ehja(traced_config(Algorithm::kHybrid, &sink));
  const auto phases = sink.of_kind(TraceKind::kPhase);
  ASSERT_GE(phases.size(), 4u);
  EXPECT_EQ(phases.front().detail, "build");
  EXPECT_EQ(phases.back().detail, "done");
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LE(phases[i - 1].time, phases[i].time);
  }
}

TEST(TraceIntegrationTest, ExpansionsMatchMetrics) {
  TraceSink sink;
  const RunResult run = run_ehja(traced_config(Algorithm::kReplicate, &sink));
  EXPECT_EQ(sink.of_kind(TraceKind::kExpansion).size(),
            run.metrics.expansions);
  // Every expansion was preceded by a memory-full report.
  EXPECT_GE(sink.of_kind(TraceKind::kMemoryFull).size(),
            run.metrics.expansions > 0 ? 1u : 0u);
}

TEST(TraceIntegrationTest, SplitOpsTracedForSplitAlgorithm) {
  TraceSink sink;
  const RunResult run = run_ehja(traced_config(Algorithm::kSplit, &sink));
  ASSERT_GT(run.metrics.expansions, 0u);
  EXPECT_EQ(sink.of_kind(TraceKind::kSplitOp).size(),
            run.metrics.expansions);
  EXPECT_EQ(sink.of_kind(TraceKind::kHandoffOp).size(), 0u);
}

TEST(TraceIntegrationTest, MemSamplesAreMonotoneInTime) {
  TraceSink sink;
  run_ehja(traced_config(Algorithm::kHybrid, &sink));
  const auto samples = sink.of_kind(TraceKind::kMemSample);
  ASSERT_GT(samples.size(), 0u);
  for (const auto& s : samples) {
    EXPECT_GE(s.b, 0);
  }
}

TEST(TraceIntegrationTest, NoSinkMeansNoCrash) {
  auto config = traced_config(Algorithm::kHybrid, nullptr);
  const RunResult run = run_ehja(config);
  EXPECT_GT(run.join().matches, 0u);
}

}  // namespace
}  // namespace ehja
