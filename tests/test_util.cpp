// Unit tests for the util module: RNG determinism and distribution quality,
// binned histograms, the greedy contiguous partitioner, running statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/histogram.hpp"
#include "util/math.hpp"
#include "util/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

// ---------------------------------------------------------------- SplitMix64

TEST(SplitMix64Test, SameSeedSameSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, StreamsAreIndependentOfConsumptionOrder) {
  // Stream 7's output must not depend on how much of stream 3 was consumed.
  SplitMix64 s3_first(42, 3);
  for (int i = 0; i < 100; ++i) s3_first.next_u64();
  SplitMix64 s7_after(42, 7);
  SplitMix64 s7_fresh(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s7_after.next_u64(), s7_fresh.next_u64());
  }
}

TEST(SplitMix64Test, DoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64Test, DoubleMeanNearHalf) {
  SplitMix64 rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64Test, NextBelowRespectsBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(SplitMix64Test, GaussianMomentsMatchStandardNormal) {
  SplitMix64 rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(SplitMix64Test, MixIsBijectiveOnSamples) {
  // mix() must not collide on a large sample (it is a bijection; collisions
  // would indicate an implementation bug).
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(SplitMix64::mix(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

// ----------------------------------------------------------- BinnedHistogram

TEST(BinnedHistogramTest, GeometryAndTotals) {
  BinnedHistogram hist(100, 1100, 10);
  EXPECT_EQ(hist.bin_count(), 10u);
  EXPECT_EQ(hist.bin_lo(0), 100u);
  EXPECT_EQ(hist.bin_hi(9), 1100u);
  hist.add(100);
  hist.add(1099, 5);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.bin_weight(0), 1u);
  EXPECT_EQ(hist.bin_weight(9), 5u);
}

TEST(BinnedHistogramTest, BinOfIsConsistentWithBinBounds) {
  BinnedHistogram hist(0, 1003, 7);  // non-divisible span
  for (std::uint64_t pos = 0; pos < 1003; ++pos) {
    const std::size_t bin = hist.bin_of(pos);
    EXPECT_GE(pos, hist.bin_lo(bin));
    EXPECT_LT(pos, hist.bin_hi(bin));
  }
}

TEST(BinnedHistogramTest, LastBinAbsorbsRemainder) {
  BinnedHistogram hist(0, 10, 3);
  // width = 3; bins cover [0,3) [3,6) [6,10).
  EXPECT_EQ(hist.bin_hi(2), 10u);
  hist.add(9);
  EXPECT_EQ(hist.bin_weight(2), 1u);
}

TEST(BinnedHistogramTest, MergeSumsElementwise) {
  BinnedHistogram a(0, 100, 4), b(0, 100, 4);
  a.add(10, 2);
  b.add(10, 3);
  b.add(90, 7);
  a.merge(b);
  EXPECT_EQ(a.bin_weight(0), 5u);
  EXPECT_EQ(a.bin_weight(3), 7u);
  EXPECT_EQ(a.total(), 12u);
}

TEST(BinnedHistogramTest, MoreBinsThanPositionsClamps) {
  BinnedHistogram hist(0, 5, 100);
  EXPECT_EQ(hist.bin_count(), 5u);
}

TEST(BinnedHistogramDeathTest, MergeGeometryMismatchAborts) {
  BinnedHistogram a(0, 100, 4), b(0, 100, 8);
  EXPECT_DEATH(a.merge(b), "geometry");
}

// -------------------------------------------------- greedy partitioning

TEST(GreedyPartitionTest, UniformWeightsSplitEvenly) {
  std::vector<std::uint64_t> weights(100, 10);
  const auto result = greedy_contiguous_partition(weights, 4);
  ASSERT_EQ(result.part_weights.size(), 4u);
  for (const auto w : result.part_weights) {
    EXPECT_NEAR(static_cast<double>(w), 250.0, 10.0);
  }
}

TEST(GreedyPartitionTest, CoversAllWeight) {
  std::vector<std::uint64_t> weights = {5, 0, 100, 3, 3, 3, 50, 0, 1};
  const auto result = greedy_contiguous_partition(weights, 3);
  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
  std::uint64_t assigned = 0;
  for (const auto w : result.part_weights) assigned += w;
  EXPECT_EQ(assigned, total);
}

TEST(GreedyPartitionTest, SinglePartTakesEverything) {
  std::vector<std::uint64_t> weights = {1, 2, 3};
  const auto result = greedy_contiguous_partition(weights, 1);
  EXPECT_TRUE(result.cuts.empty());
  EXPECT_EQ(result.part_weights[0], 6u);
}

TEST(GreedyPartitionTest, MorePartsThanWeights) {
  std::vector<std::uint64_t> weights = {9, 9};
  const auto result = greedy_contiguous_partition(weights, 5);
  ASSERT_EQ(result.cuts.size(), 4u);
  std::uint64_t assigned = 0;
  for (const auto w : result.part_weights) assigned += w;
  EXPECT_EQ(assigned, 18u);
}

TEST(GreedyPartitionTest, GreedyBoundHolds) {
  // The heaviest part must not exceed ideal + max single weight.
  SplitMix64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> weights(200);
    std::uint64_t total = 0, biggest = 0;
    for (auto& w : weights) {
      w = rng.next_below(1000);
      total += w;
      biggest = std::max(biggest, w);
    }
    const std::size_t parts = 1 + rng.next_below(16);
    const auto result = greedy_contiguous_partition(weights, parts);
    const double ideal = static_cast<double>(total) / parts;
    for (const auto w : result.part_weights) {
      EXPECT_LE(static_cast<double>(w), ideal + biggest + 1);
    }
  }
}

TEST(GreedyPartitionTest, CutsAreMonotone) {
  std::vector<std::uint64_t> weights = {100, 0, 0, 0, 0, 0, 0, 100};
  const auto result = greedy_contiguous_partition(weights, 4);
  for (std::size_t i = 1; i < result.cuts.size(); ++i) {
    EXPECT_LE(result.cuts[i - 1], result.cuts[i]);
  }
}

// -------------------------------------------------------------- RunningStats

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.25);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.imbalance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  SplitMix64 rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100;
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, ImbalanceOfPerfectBalanceIsOne) {
  RunningStats stats;
  for (int i = 0; i < 10; ++i) stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(RunningStatsTest, SummarizeVector) {
  const auto stats = summarize(std::vector<std::uint64_t>{2, 4, 6});
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 12.0);
}

// --------------------------------------------------------------------- math

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 7), 0u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
  EXPECT_EQ(ceil_div(7, 7), 1u);
  EXPECT_EQ(ceil_div(8, 7), 2u);
  EXPECT_EQ(ceil_div(14, 7), 2u);
  EXPECT_EQ(ceil_div(~0ull, 1), ~0ull);           // no intermediate overflow
  EXPECT_EQ(ceil_div(~0ull, ~0ull), 1u);
  static_assert(ceil_div(10, 3) == 4);             // usable in constant context
}

// -------------------------------------------------------------------- units

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kMB, 1000u * 1000u);
  EXPECT_DOUBLE_EQ(bits_per_sec(100e6), 12.5e6);
}

}  // namespace
}  // namespace ehja
