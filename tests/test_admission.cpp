// AdmissionController unit tests (serve/admission.hpp).
//
// The controller is pure bookkeeping -- no sockets, no actors -- so every
// policy promise in its header is checked here directly: priority order with
// FIFO within a priority, skip-blocked backfill, per-tenant slot/memory
// budgets, queue-full backpressure with a retry hint, permanent rejection of
// never-admittable demands, expansion grant/deny, cancel, and drain.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "serve/admission.hpp"
#include "util/units.hpp"

namespace ehja::serve {
namespace {

AdmissionController small_fleet(std::size_t max_queue = 16,
                                std::uint64_t node_capacity = 64 * kMiB,
                                std::uint32_t nodes = 4) {
  std::vector<NodeId> ids;
  for (std::uint32_t n = 1; n <= nodes; ++n) ids.push_back(static_cast<NodeId>(n));
  return AdmissionController(ids, node_capacity, max_queue);
}

TenantSpec tenant(const std::string& name, std::uint32_t priority,
                  std::uint32_t max_slots = 8,
                  std::uint64_t max_memory = 256 * kMiB) {
  TenantSpec t;
  t.name = name;
  t.priority = priority;
  t.max_slots = max_slots;
  t.max_memory_bytes = max_memory;
  return t;
}

QueryDemand demand(std::uint32_t sources = 1, std::uint32_t joins = 1,
                   std::uint64_t join_mem = 4 * kMiB) {
  QueryDemand d;
  d.sources = sources;
  d.join_nodes = joins;
  d.join_memory_bytes = join_mem;
  return d;
}

TEST(Admission, AdmitsAndPlacesWithinBudget) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0));
  const SubmitOutcome out = adm.submit(1, "alpha", demand(1, 2));
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(out.queue_position, 1u);

  const auto a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 1u);
  EXPECT_EQ(a->placement.source_nodes.size(), 1u);
  EXPECT_EQ(a->placement.join_nodes.size(), 2u);
  EXPECT_TRUE(adm.is_running(1));
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 3u);
  EXPECT_EQ(adm.tenant_memory_in_use("alpha"),
            kSourceMemoryCharge + 2 * 4 * kMiB);

  adm.on_complete(1);
  EXPECT_FALSE(adm.is_running(1));
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 0u);
  EXPECT_EQ(adm.tenant_memory_in_use("alpha"), 0u);
}

TEST(Admission, UnknownTenantIsRejectedPermanently) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0));
  const SubmitOutcome out = adm.submit(1, "nobody", demand());
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kUnknownTenant);
  EXPECT_EQ(out.retry_after_ms, 0u);
}

TEST(Admission, NeverAdmittableDemandIsRejectedNotQueued) {
  AdmissionController adm = small_fleet(16, /*node_capacity=*/8 * kMiB);
  adm.add_tenant(tenant("alpha", 0, /*max_slots=*/2, /*max_memory=*/16 * kMiB));

  // More slots than the tenant could ever hold.
  SubmitOutcome out = adm.submit(1, "alpha", demand(2, 2));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kNeverAdmittable);
  EXPECT_EQ(out.retry_after_ms, 0u);

  // More total memory than the tenant budget allows, even on an idle fleet.
  out = adm.submit(2, "alpha", demand(1, 1, /*join_mem=*/32 * kMiB));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kNeverAdmittable);

  // A single join bigger than one node's capacity can never be placed.
  out = adm.submit(3, "alpha", demand(1, 1, /*join_mem=*/9 * kMiB));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kNeverAdmittable);

  EXPECT_EQ(adm.queued_count(), 0u);
}

TEST(Admission, QueueFullBouncesWithRetryHint) {
  AdmissionController adm = small_fleet(/*max_queue=*/2);
  adm.add_tenant(tenant("alpha", 0));
  EXPECT_TRUE(adm.submit(1, "alpha", demand()).accepted);
  EXPECT_TRUE(adm.submit(2, "alpha", demand()).accepted);
  const SubmitOutcome out = adm.submit(3, "alpha", demand());
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kQueueFull);
  EXPECT_GT(out.retry_after_ms, 0u);
}

TEST(Admission, PriorityDescendingFifoWithin) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("low", 0));
  adm.add_tenant(tenant("high", 5));
  EXPECT_TRUE(adm.submit(1, "low", demand()).accepted);
  EXPECT_TRUE(adm.submit(2, "high", demand()).accepted);
  EXPECT_TRUE(adm.submit(3, "high", demand()).accepted);
  EXPECT_TRUE(adm.submit(4, "low", demand()).accepted);

  // High-priority queries first, FIFO within each priority band.
  std::vector<QueryId> order;
  while (const auto a = adm.take_ready()) order.push_back(a->id);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 4u);
}

TEST(Admission, SkipBlockedBackfillNeverStarvesOtherTenants) {
  // greedy can hold 2 slots; modest has plenty of headroom.
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("greedy", /*priority=*/9, /*max_slots=*/2));
  adm.add_tenant(tenant("modest", /*priority=*/0));

  EXPECT_TRUE(adm.submit(1, "greedy", demand(1, 1)).accepted);  // 2 slots
  EXPECT_TRUE(adm.submit(2, "greedy", demand(1, 1)).accepted);  // over budget
  EXPECT_TRUE(adm.submit(3, "modest", demand(1, 1)).accepted);

  auto a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 1u);

  // greedy's second query is budget-blocked; it must not block modest even
  // though greedy outranks it.
  a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 3u);
  EXPECT_FALSE(adm.take_ready().has_value());
  EXPECT_EQ(adm.queue_position(2).value_or(0), 1u);

  // greedy's own completion -- not anyone else's -- unblocks it.
  adm.on_complete(1);
  a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 2u);
}

TEST(Admission, TenantMemoryBudgetBlocksUntilCompletion) {
  AdmissionController adm =
      small_fleet(16, /*node_capacity=*/64 * kMiB, /*nodes=*/4);
  adm.add_tenant(tenant("alpha", 0, /*max_slots=*/32,
                        /*max_memory=*/20 * kMiB));

  // 1 source (1 MiB) + 1 join (16 MiB) = 17 MiB: fits once, not twice.
  EXPECT_TRUE(adm.submit(1, "alpha", demand(1, 1, 16 * kMiB)).accepted);
  EXPECT_TRUE(adm.submit(2, "alpha", demand(1, 1, 16 * kMiB)).accepted);
  ASSERT_TRUE(adm.take_ready().has_value());
  EXPECT_FALSE(adm.take_ready().has_value());

  adm.on_complete(1);
  const auto a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 2u);
}

TEST(Admission, PlacementSpreadsAcrossFreestNodes) {
  AdmissionController adm =
      small_fleet(16, /*node_capacity=*/64 * kMiB, /*nodes=*/3);
  adm.add_tenant(tenant("alpha", 0, /*max_slots=*/16, 512 * kMiB));
  EXPECT_TRUE(adm.submit(1, "alpha", demand(1, 3, 16 * kMiB)).accepted);
  const auto a = adm.take_ready();
  ASSERT_TRUE(a.has_value());
  // Three equal joins over three empty equal nodes: one each.
  std::vector<NodeId> nodes = a->placement.join_nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(adm.fleet_free_bytes(),
            3 * 64 * kMiB - 3 * 16 * kMiB - kSourceMemoryCharge);
}

TEST(Admission, ExpansionGrantChargesAndDeniesAtBudget) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0, /*max_slots=*/3));
  EXPECT_TRUE(adm.submit(1, "alpha", demand(1, 1, 4 * kMiB)).accepted);
  ASSERT_TRUE(adm.take_ready().has_value());
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 2u);

  const std::uint64_t free_before = adm.fleet_free_bytes();
  const auto node = adm.grant_expansion(1);
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 3u);
  EXPECT_EQ(adm.fleet_free_bytes(), free_before - 4 * kMiB);

  // At the slot budget: deny, and the denial changes nothing.
  EXPECT_FALSE(adm.grant_expansion(1).has_value());
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 3u);

  // Early release refunds; completion releases the rest.
  adm.release_expansion(1, *node);
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 2u);
  EXPECT_EQ(adm.fleet_free_bytes(), free_before);
  adm.on_complete(1);
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 0u);
  EXPECT_EQ(adm.fleet_free_bytes(), 4 * 64 * kMiB);
}

TEST(Admission, CompletionReleasesUnreturnedExpansions) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0, /*max_slots=*/8));
  EXPECT_TRUE(adm.submit(1, "alpha", demand()).accepted);
  ASSERT_TRUE(adm.take_ready().has_value());
  ASSERT_TRUE(adm.grant_expansion(1).has_value());
  ASSERT_TRUE(adm.grant_expansion(1).has_value());
  adm.on_complete(1);  // never individually released
  EXPECT_EQ(adm.tenant_slots_in_use("alpha"), 0u);
  EXPECT_EQ(adm.tenant_memory_in_use("alpha"), 0u);
  EXPECT_EQ(adm.fleet_free_bytes(), 4 * 64 * kMiB);
}

TEST(Admission, CancelQueuedOnlyAffectsWaitingQueries) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0));
  EXPECT_TRUE(adm.submit(1, "alpha", demand()).accepted);
  EXPECT_TRUE(adm.submit(2, "alpha", demand()).accepted);
  EXPECT_TRUE(adm.cancel_queued(2));
  EXPECT_FALSE(adm.cancel_queued(2));  // already gone
  ASSERT_TRUE(adm.take_ready().has_value());
  EXPECT_FALSE(adm.cancel_queued(1));  // running, not queued
  EXPECT_FALSE(adm.take_ready().has_value());
}

TEST(Admission, DrainRejectsNewSubmissionsOnly) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("alpha", 0));
  EXPECT_TRUE(adm.submit(1, "alpha", demand()).accepted);
  adm.begin_drain();
  EXPECT_TRUE(adm.draining());
  const SubmitOutcome out = adm.submit(2, "alpha", demand());
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, AdmitReject::kDraining);
  // The queued query is untouched; the server decides its fate.
  EXPECT_EQ(adm.queued_count(), 1u);
  ASSERT_TRUE(adm.take_ready().has_value());
}

TEST(Admission, QueuePositionTracksReorderingAndAdmission) {
  AdmissionController adm = small_fleet();
  adm.add_tenant(tenant("low", 0));
  adm.add_tenant(tenant("high", 3));
  EXPECT_EQ(adm.submit(1, "low", demand()).queue_position, 1u);
  // A higher-priority arrival jumps the line.
  EXPECT_EQ(adm.submit(2, "high", demand()).queue_position, 1u);
  EXPECT_EQ(adm.queue_position(1).value_or(0), 2u);
  ASSERT_TRUE(adm.take_ready().has_value());
  EXPECT_EQ(adm.queue_position(1).value_or(0), 1u);
  EXPECT_FALSE(adm.queue_position(2).has_value());  // running now
}

}  // namespace
}  // namespace ehja::serve
