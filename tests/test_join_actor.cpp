// Protocol-level unit tests for JoinProcessActor via the actor harness:
// init/insert/overflow reporting, freeze-and-forward, split migration with
// stale re-routing, reshuffle execution, spill switch, drain acks, final
// report.
#include <gtest/gtest.h>

#include <memory>

#include "actor_harness.hpp"
#include "core/join_process.hpp"
#include "core/messages.hpp"

namespace ehja {
namespace {

constexpr ActorId kScheduler = 0;

struct Fixture {
  std::shared_ptr<EhjaConfig> config = std::make_shared<EhjaConfig>();
  std::unique_ptr<HarnessRuntime> rt;
  ActorId join = kInvalidActor;
  JoinProcessActor* actor = nullptr;

  explicit Fixture(Algorithm algorithm,
                   std::uint64_t budget_tuples = 1000) {
    config->algorithm = algorithm;
    config->data_sources = 1;
    config->chunk_tuples = 100;
    config->node_hash_memory_bytes =
        budget_tuples * tuple_footprint(config->build_rel.schema);
    rt = std::make_unique<HarnessRuntime>(make_cluster(*config));
    struct Null final : Actor {
      void on_message(const Message&) override {}
    };
    rt->spawn(config->scheduler_node(), std::make_unique<Null>());
    auto jp = std::make_unique<JoinProcessActor>(config, kScheduler);
    actor = jp.get();
    join = rt->spawn(config->pool_node(0), std::move(jp));
  }

  void init(PosRange range, JoinRole role = JoinRole::kInitial) {
    JoinInitPayload payload;
    payload.role = role;
    payload.range = range;
    payload.source_count = 1;
    rt->deliver(join, make_message(Tag::kJoinInit, payload, 48));
  }

  Chunk build_chunk(std::uint64_t first_pos, std::size_t n,
                    std::uint64_t id_base = 0) {
    Chunk chunk;
    chunk.rel = RelTag::kR;
    for (std::size_t i = 0; i < n; ++i) {
      chunk.batch.push_back(
          Tuple{id_base + i, (first_pos + i % 64) << (64 - kPositionBits)});
    }
    return chunk;
  }

  void deliver_chunk(Chunk chunk, ActorId from = 5) {
    ChunkPayload payload;
    payload.chunk = std::move(chunk);
    rt->deliver_from(from, join,
                     make_message(Tag::kDataChunk, payload, 1000));
  }
};

TEST(JoinActorTest, InsertsWithinRangeAndCounts) {
  Fixture fx(Algorithm::kHybrid);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(10, 50));
  EXPECT_EQ(fx.actor->build_tuples_held(), 50u);
  EXPECT_TRUE(fx.rt->sent_with_tag(Tag::kMemoryFull).empty());
}

TEST(JoinActorTest, OverflowRaisesMemoryFullOnce) {
  Fixture fx(Algorithm::kHybrid, /*budget_tuples=*/100);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(0, 80));
  EXPECT_TRUE(fx.rt->sent_with_tag(Tag::kMemoryFull).empty());
  fx.deliver_chunk(fx.build_chunk(64, 80));
  ASSERT_EQ(fx.rt->sent_with_tag(Tag::kMemoryFull).size(), 1u);
  // Still over budget: further chunks must NOT duplicate the request.
  fx.deliver_chunk(fx.build_chunk(128, 80));
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kMemoryFull).size(), 1u);
  const auto& payload =
      fx.rt->sent_with_tag(Tag::kMemoryFull)[0].msg.as<MemoryFullPayload>();
  EXPECT_GT(payload.footprint_bytes, payload.budget_bytes);
}

TEST(JoinActorTest, ReliefRearmsTheRequest) {
  Fixture fx(Algorithm::kHybrid, 100);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(0, 200));
  ASSERT_EQ(fx.rt->sent_with_tag(Tag::kMemoryFull).size(), 1u);
  fx.rt->deliver(fx.join, make_signal(Tag::kRelief));
  fx.deliver_chunk(fx.build_chunk(64, 10));
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kMemoryFull).size(), 2u);
}

TEST(JoinActorTest, FrozenNodeForwardsBuildChunks) {
  Fixture fx(Algorithm::kReplicate, 100);
  fx.init(PosRange{0, 1024});
  HandoffStartPayload handoff;
  handoff.op_id = 7;
  handoff.target = 42;
  fx.rt->deliver(fx.join, make_message(Tag::kHandoffStart, handoff, 48));
  EXPECT_TRUE(fx.actor->frozen());
  // The op's end marker goes out immediately.
  const auto ends = fx.rt->sent_with_tag(Tag::kForwardEnd);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].to, 42);
  EXPECT_EQ(ends[0].msg.as<ForwardEndPayload>().op_id, 7u);
  // Subsequent build data is forwarded, not inserted.
  fx.deliver_chunk(fx.build_chunk(0, 30));
  const auto forwarded = fx.rt->sent_with_tag(Tag::kDataChunk);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].to, 42);
  EXPECT_EQ(forwarded[0].msg.as<ChunkPayload>().chunk.size(), 30u);
  EXPECT_EQ(fx.actor->build_tuples_held(), 0u);
}

TEST(JoinActorTest, FrozenNodeStillProbes) {
  Fixture fx(Algorithm::kReplicate, 1000);
  fx.init(PosRange{0, 1024});
  Chunk build = fx.build_chunk(10, 20);
  fx.deliver_chunk(build);
  HandoffStartPayload handoff;
  handoff.op_id = 1;
  handoff.target = 42;
  fx.rt->deliver(fx.join, make_message(Tag::kHandoffStart, handoff, 48));
  // Probe with the same keys: matches must come from the frozen table.
  Chunk probe = build;
  probe.rel = RelTag::kS;
  fx.deliver_chunk(probe);
  EXPECT_GT(fx.actor->result().matches, 0u);
}

TEST(JoinActorTest, SplitRequestMigratesUpperHalf) {
  Fixture fx(Algorithm::kSplit, 10'000);
  fx.init(PosRange{0, 1024});
  // 40 tuples in the lower half, 24 in the upper half.
  fx.deliver_chunk(fx.build_chunk(100, 40));
  fx.deliver_chunk(fx.build_chunk(600, 24));
  SplitRequestPayload req;
  req.op_id = 3;
  req.moved = PosRange{512, 1024};
  req.target = 77;
  fx.rt->deliver(fx.join, make_message(Tag::kSplitRequest, req, 48));
  EXPECT_EQ(fx.actor->range(), (PosRange{0, 512}));
  EXPECT_EQ(fx.actor->build_tuples_held(), 40u);
  // Migrated data + the end marker went to the new node.
  std::uint64_t migrated = 0;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    ASSERT_EQ(sent.to, 77);
    migrated += sent.msg.as<ChunkPayload>().chunk.size();
  }
  EXPECT_EQ(migrated, 24u);
  const auto ends = fx.rt->sent_with_tag(Tag::kForwardEnd);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].msg.as<ForwardEndPayload>().op_id, 3u);
}

TEST(JoinActorTest, StaleChunksReRoutedAfterSplit) {
  Fixture fx(Algorithm::kSplit, 10'000);
  fx.init(PosRange{0, 1024});
  SplitRequestPayload req;
  req.op_id = 1;
  req.moved = PosRange{512, 1024};
  req.target = 77;
  fx.rt->deliver(fx.join, make_message(Tag::kSplitRequest, req, 48));
  fx.rt->outbox().clear();
  // A stale source still sends a chunk straddling both halves.
  Chunk mixed;
  mixed.rel = RelTag::kR;
  for (std::uint64_t i = 0; i < 10; ++i) {
    mixed.batch.push_back(Tuple{i, (100 + i) << (64 - kPositionBits)});
    mixed.batch.push_back(Tuple{100 + i, (700 + i) << (64 - kPositionBits)});
  }
  fx.deliver_chunk(std::move(mixed));
  EXPECT_EQ(fx.actor->build_tuples_held(), 10u);  // lower half kept
  const auto forwarded = fx.rt->sent_with_tag(Tag::kDataChunk);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].to, 77);
  EXPECT_EQ(forwarded[0].msg.as<ChunkPayload>().chunk.size(), 10u);
}

TEST(JoinActorTest, ReshuffleShipsForeignRangesAndShrinks) {
  Fixture fx(Algorithm::kHybrid, 10'000);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(100, 30));  // positions 100..163
  fx.deliver_chunk(fx.build_chunk(800, 20));  // positions 800..863
  // Histogram request unfreezes + disables expansion.
  HistogramRequestPayload hist;
  hist.set_id = 0;
  hist.bins = 64;
  fx.rt->deliver(fx.join, make_message(Tag::kHistogramRequest, hist, 48));
  const auto replies = fx.rt->sent_with_tag(Tag::kHistogramReply);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].msg.as<HistogramReplyPayload>().histogram.total(),
            50u);
  // Plan: this node keeps [0,512), actor 88 takes [512,1024).
  ReshuffleMovePayload move;
  move.plan = {{PosRange{0, 512}, {fx.join}}, {PosRange{512, 1024}, {88}}};
  fx.rt->deliver(fx.join, make_message(Tag::kReshuffleMove, move, 64));
  EXPECT_EQ(fx.actor->range(), (PosRange{0, 512}));
  EXPECT_EQ(fx.actor->build_tuples_held(), 30u);
  std::uint64_t shipped = 0;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    EXPECT_EQ(sent.to, 88);
    shipped += sent.msg.as<ChunkPayload>().chunk.size();
  }
  EXPECT_EQ(shipped, 20u);
  EXPECT_EQ(fx.rt->sent_with_tag(Tag::kReshuffleDone).size(), 1u);
}

TEST(JoinActorTest, SwitchToSpillRehomesTable) {
  Fixture fx(Algorithm::kSplit, 100);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(0, 200));
  EXPECT_FALSE(fx.actor->in_spill_mode());
  fx.rt->deliver(fx.join, make_signal(Tag::kSwitchToSpill));
  EXPECT_TRUE(fx.actor->in_spill_mode());
  EXPECT_EQ(fx.actor->build_tuples_held(), 200u);  // conserved
  // Further build chunks keep landing (on disk or in the small table).
  fx.deliver_chunk(fx.build_chunk(300, 50));
  EXPECT_EQ(fx.actor->build_tuples_held(), 250u);
}

TEST(JoinActorTest, DrainAckReportsCounters) {
  Fixture fx(Algorithm::kHybrid, 10'000);
  fx.init(PosRange{0, 1024});
  fx.deliver_chunk(fx.build_chunk(10, 30));
  fx.deliver_chunk(fx.build_chunk(20, 30));
  DrainProbePayload probe;
  probe.epoch = 9;
  fx.rt->deliver(fx.join, make_message(Tag::kDrainProbe, probe, 48));
  const auto acks = fx.rt->sent_with_tag(Tag::kDrainAck);
  ASSERT_EQ(acks.size(), 1u);
  const auto& ack = acks[0].msg.as<DrainAckPayload>();
  EXPECT_EQ(ack.epoch, 9u);
  EXPECT_EQ(ack.data_chunks_received, 2u);
  EXPECT_EQ(ack.data_chunks_forwarded, 0u);
}

TEST(JoinActorTest, FinalReportMatchesState) {
  Fixture fx(Algorithm::kHybrid, 10'000);
  fx.init(PosRange{0, 1024});
  Chunk build = fx.build_chunk(10, 40);
  fx.deliver_chunk(build);
  Chunk probe = build;
  probe.rel = RelTag::kS;
  fx.deliver_chunk(probe);
  fx.rt->deliver(fx.join, make_signal(Tag::kReportRequest));
  const auto reports = fx.rt->sent_with_tag(Tag::kNodeReport);
  ASSERT_EQ(reports.size(), 1u);
  const auto& report = reports[0].msg.as<NodeReportPayload>();
  EXPECT_EQ(report.metrics.build_tuples, 40u);
  EXPECT_EQ(report.metrics.probe_tuples, 40u);
  EXPECT_GT(report.metrics.matches, 0u);
  EXPECT_EQ(report.metrics.chunks_received, 2u);
}

TEST(JoinActorTest, PreInitChunksReplayedAtInit) {
  Fixture fx(Algorithm::kHybrid, 10'000);
  // Chunk arrives BEFORE kJoinInit (thread-runtime race).
  fx.deliver_chunk(fx.build_chunk(10, 25));
  EXPECT_EQ(fx.actor->build_tuples_held(), 0u);
  fx.init(PosRange{0, 1024});
  EXPECT_EQ(fx.actor->build_tuples_held(), 25u);
}

TEST(JoinActorDeathTest, ForeignTupleWithoutForwardEntryAborts) {
  Fixture fx(Algorithm::kSplit, 10'000);
  fx.init(PosRange{0, 512});
  Chunk wrong;
  wrong.rel = RelTag::kR;
  wrong.batch.push_back(Tuple{1, std::uint64_t{900} << (64 - kPositionBits)});
  ChunkPayload payload;
  payload.chunk = std::move(wrong);
  EXPECT_DEATH(fx.rt->deliver_from(
                   5, fx.join, make_message(Tag::kDataChunk, payload, 100)),
               "never owned");
}

}  // namespace
}  // namespace ehja
