// Tests for the actor runtimes: virtual-time semantics of the DES runtime
// (busy-time serialization, charge, send costing) and behavioural parity of
// the thread runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "runtime/actor.hpp"
#include "runtime/message.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace ehja {
namespace {

constexpr int kPing = 1;
constexpr int kPong = 2;
constexpr int kWork = 3;

ClusterSpec two_nodes() {
  ClusterSpec spec = make_uniform_cluster(2);
  spec.link.bandwidth_bytes_per_sec = 1e6;
  spec.link.latency_sec = 1e-3;
  spec.link.per_message_overhead_bytes = 0.0;
  return spec;
}

// Records the virtual time at which each message was handled.
class Recorder final : public Actor {
 public:
  void on_message(const Message& msg) override {
    times.push_back(now());
    tags.push_back(msg.tag);
    if (work_per_message > 0.0) charge(work_per_message);
  }
  std::vector<SimTime> times;
  std::vector<int> tags;
  double work_per_message = 0.0;
};

// Sends `count` messages of `bytes` each to a target on start.
class Blaster final : public Actor {
 public:
  Blaster(ActorId target, int count, std::size_t bytes)
      : target_(target), count_(count), bytes_(bytes) {}
  void on_start() override {
    for (int i = 0; i < count_; ++i) {
      send(target_, make_signal(kWork, bytes_));
    }
  }
  void on_message(const Message&) override {}

 private:
  ActorId target_;
  int count_;
  std::size_t bytes_;
};

TEST(SimRuntimeTest, MessageArrivalIncludesNetworkCost) {
  SimRuntime rt(two_nodes());
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const ActorId target = rt.spawn(1, std::move(recorder));
  rt.spawn(0, std::make_unique<Blaster>(target, 1, 1000));
  rt.run();
  ASSERT_EQ(rec->times.size(), 1u);
  // 1000 B at 1 MB/s + 1 ms latency.
  EXPECT_DOUBLE_EQ(rec->times[0], 0.002);
}

TEST(SimRuntimeTest, NodeBusyTimeSerializesHandlers) {
  SimRuntime rt(two_nodes());
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  rec->work_per_message = 0.5;
  const ActorId target = rt.spawn(1, std::move(recorder));
  rt.spawn(0, std::make_unique<Blaster>(target, 3, 1000));
  rt.run();
  ASSERT_EQ(rec->times.size(), 3u);
  // First message arrives at 2 ms and computes 0.5 s; the second arrived at
  // 3 ms but cannot start until 0.502; the third queues behind it.
  EXPECT_DOUBLE_EQ(rec->times[0], 0.002);
  EXPECT_DOUBLE_EQ(rec->times[1], 0.502);
  EXPECT_DOUBLE_EQ(rec->times[2], 1.002);
}

TEST(SimRuntimeTest, ChargeRespectsCpuScale) {
  ClusterSpec spec = two_nodes();
  spec.nodes[1].cpu_scale = 2.0;  // twice as fast
  SimRuntime rt(spec);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  rec->work_per_message = 1.0;
  const ActorId target = rt.spawn(1, std::move(recorder));
  rt.spawn(0, std::make_unique<Blaster>(target, 2, 100));
  rt.run();
  ASSERT_EQ(rec->times.size(), 2u);
  // 1.0 s of work on a 2x node takes 0.5 virtual seconds.
  EXPECT_NEAR(rec->times[1] - rec->times[0], 0.5, 1e-9);
}

TEST(SimRuntimeTest, PerPairFifoDelivery) {
  SimRuntime rt(two_nodes());
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const ActorId target = rt.spawn(1, std::move(recorder));

  class Mixed final : public Actor {
   public:
    explicit Mixed(ActorId target) : target_(target) {}
    void on_start() override {
      for (int i = 0; i < 20; ++i) {
        // Alternate large and small messages; order must be preserved.
        send(target_, make_signal(i, i % 2 == 0 ? 50000 : 10));
      }
    }
    void on_message(const Message&) override {}

   private:
    ActorId target_;
  };
  rt.spawn(0, std::make_unique<Mixed>(target));
  rt.run();
  ASSERT_EQ(rec->tags.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rec->tags[static_cast<size_t>(i)], i);
}

// Ping-pong pair used by both runtimes.
class Ponger final : public Actor {
 public:
  void on_message(const Message& msg) override {
    if (msg.tag == kPing) {
      send(msg.from, make_signal(kPong));
    }
  }
};

class Pinger final : public Actor {
 public:
  Pinger(ActorId peer, int rounds, std::atomic<int>& completed)
      : peer_(peer), rounds_(rounds), completed_(&completed) {}
  void on_start() override { send(peer_, make_signal(kPing)); }
  void on_message(const Message& msg) override {
    ASSERT_EQ(msg.tag, kPong);
    completed_->fetch_add(1);
    if (++done_ < rounds_) {
      send(peer_, make_signal(kPing));
    } else {
      rt().request_stop();
    }
  }

 private:
  ActorId peer_;
  int rounds_;
  int done_ = 0;
  std::atomic<int>* completed_;
};

TEST(SimRuntimeTest, PingPongCompletes) {
  SimRuntime rt(two_nodes());
  std::atomic<int> completed{0};
  const ActorId ponger = rt.spawn(1, std::make_unique<Ponger>());
  rt.spawn(0, std::make_unique<Pinger>(ponger, 10, completed));
  rt.run();
  EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadRuntimeTest, PingPongCompletes) {
  ThreadRuntime rt(two_nodes());
  std::atomic<int> completed{0};
  const ActorId ponger = rt.spawn(1, std::make_unique<Ponger>());
  rt.spawn(0, std::make_unique<Pinger>(ponger, 50, completed));
  rt.run();
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadRuntimeTest, DynamicSpawnWhileRunning) {
  ThreadRuntime rt(make_uniform_cluster(3));

  class Spawner final : public Actor {
   public:
    explicit Spawner(std::atomic<int>& flag) : flag_(&flag) {}
    void on_start() override { defer(make_signal(kWork)); }
    void on_message(const Message& msg) override {
      if (msg.tag == kWork) {
        // Spawn a ponger at runtime, then ping it.
        const ActorId fresh = rt().spawn(2, std::make_unique<Ponger>());
        send(fresh, make_signal(kPing));
      } else if (msg.tag == kPong) {
        flag_->store(1);
        rt().request_stop();
      }
    }

   private:
    std::atomic<int>* flag_;
  };

  std::atomic<int> flag{0};
  rt.spawn(0, std::make_unique<Spawner>(flag));
  rt.run();
  EXPECT_EQ(flag.load(), 1);
}

TEST(SimRuntimeTest, DeferCarriesNoNetworkCost) {
  SimRuntime rt(two_nodes());

  class Deferrer final : public Actor {
   public:
    void on_start() override { defer(make_signal(kWork, 1'000'000)); }
    void on_message(const Message&) override { when = now(); }
    SimTime when = -1.0;
  };
  auto actor = std::make_unique<Deferrer>();
  Deferrer* raw = actor.get();
  rt.spawn(0, std::move(actor));
  rt.run();
  // A 1 MB payload would cost ~1 s on the wire; defer() must not.
  EXPECT_DOUBLE_EQ(raw->when, 0.0);
}

TEST(SimRuntimeTest, SpawnFromHandlerPaysSetupLatency) {
  SimRuntime rt(two_nodes());

  class Parent final : public Actor {
   public:
    void on_start() override { defer(make_signal(kWork)); }
    void on_message(const Message&) override {
      class Child final : public Actor {
       public:
        void on_start() override { started = now(); }
        void on_message(const Message&) override {}
        SimTime started = -1.0;
      };
      auto child = std::make_unique<Child>();
      child_ptr = child.get();
      rt().spawn(1, std::move(child));
    }
    Actor* child_ptr = nullptr;
  };
  auto parent = std::make_unique<Parent>();
  Parent* raw = parent.get();
  rt.spawn(0, std::move(parent));
  rt.run();
  ASSERT_NE(raw->child_ptr, nullptr);
  EXPECT_GE(rt.now(), SimRuntime::kSpawnLatencySec);
}

TEST(SimRuntimeTest, BlockingSendThrottlesProducer) {
  // A producer blasting large messages must advance its own virtual clock
  // by the NIC serialization of each send (synchronous send semantics) --
  // the flow control that bounds in-flight memory.
  SimRuntime rt(two_nodes());

  class TimedBlaster final : public Actor {
   public:
    explicit TimedBlaster(ActorId target) : target_(target) {}
    void on_start() override {
      for (int i = 0; i < 5; ++i) {
        send(target_, make_signal(kWork, 100'000));  // 0.1 s each at 1 MB/s
      }
      finished_at = now();
    }
    void on_message(const Message&) override {}
    SimTime finished_at = -1.0;

   private:
    ActorId target_;
  };
  const ActorId sink = rt.spawn(1, std::make_unique<Recorder>());
  auto blaster = std::make_unique<TimedBlaster>(sink);
  TimedBlaster* raw = blaster.get();
  rt.spawn(0, std::move(blaster));
  rt.run();
  // Five 0.1 s serializations: the handler's own clock moved past 0.5 s.
  EXPECT_GE(raw->finished_at, 0.5);
}

TEST(SimRuntimeTest, SlowConsumerBackpressuresSender) {
  // The receiver charges heavy CPU per message; with consumer-paced RX
  // admission the sender's sends serialize at the consumer's rate, not the
  // NIC's.
  SimRuntime rt(two_nodes());
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  rec->work_per_message = 1.0;  // 1 s of processing per message
  const ActorId sink = rt.spawn(1, std::move(recorder));
  rt.spawn(0, std::make_unique<Blaster>(sink, 4, 1000));
  rt.run();
  ASSERT_EQ(rec->times.size(), 4u);
  // Message k cannot start before k seconds of consumer work completed
  // (the node's busy chain serializes the handlers in logical time even
  // though the events fire at their arrival instants).
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_GE(rec->times[k], static_cast<double>(k));
  }
}

TEST(SimRuntimeTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimRuntime rt(two_nodes());
    auto recorder = std::make_unique<Recorder>();
    Recorder* rec = recorder.get();
    rec->work_per_message = 0.01;
    const ActorId target = rt.spawn(1, std::move(recorder));
    rt.spawn(0, std::make_unique<Blaster>(target, 25, 777));
    rt.run();
    return rec->times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ehja
