// Protocol-level unit tests for DataSourceActor via the actor harness:
// routing, chunk buffering, map-update adoption, probe broadcast, source
// completion reporting.
#include <gtest/gtest.h>

#include <memory>

#include "actor_harness.hpp"
#include "core/data_source.hpp"
#include "core/messages.hpp"

namespace ehja {
namespace {

constexpr ActorId kScheduler = 0;

struct Fixture {
  std::shared_ptr<EhjaConfig> config = std::make_shared<EhjaConfig>();
  std::unique_ptr<HarnessRuntime> rt;
  ActorId source = kInvalidActor;
  DataSourceActor* actor = nullptr;

  explicit Fixture(std::uint64_t build_count = 4000,
                   std::uint32_t chunk = 1000) {
    config->data_sources = 1;
    config->build_rel.tuple_count = build_count;
    config->probe_rel.tuple_count = build_count;
    config->build_rel.dist = DistributionSpec::Uniform();
    config->probe_rel.dist = DistributionSpec::Uniform();
    config->chunk_tuples = chunk;
    config->generation_slice_tuples = chunk;
    rt = std::make_unique<HarnessRuntime>(make_cluster(*config));
    // Actor 0 stands in for the scheduler (never started).
    struct Null final : Actor {
      void on_message(const Message&) override {}
    };
    rt->spawn(config->scheduler_node(), std::make_unique<Null>());
    auto ds = std::make_unique<DataSourceActor>(config, 0, kScheduler);
    actor = ds.get();
    source = rt->spawn(config->source_node(0), std::move(ds));
  }

  /// Start the build phase against a 2-owner map (actors 10 and 11 don't
  /// exist; the harness just records sends).
  void start_build(PartitionMap map) {
    StartBuildPayload payload;
    payload.map = std::move(map);
    rt->deliver(source, make_message(Tag::kStartBuild, payload, 100));
  }

  /// Run generation slices until the source stops self-deferring.
  void drain_generation() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::deque<HarnessRuntime::Sent> batch;
      batch.swap(rt->outbox());
      for (auto& sent : batch) {
        if (sent.to == source &&
            sent.msg.tag == static_cast<int>(Tag::kGenSlice)) {
          Message msg = std::move(sent.msg);
          msg.from = sent.from;
          rt->actor(source).on_message(msg);
          progressed = true;
        } else {
          rt->outbox().push_back(std::move(sent));  // keep for assertions
        }
      }
    }
  }
};

PartitionMap two_owner_map() { return PartitionMap::initial({10, 11}); }

TEST(DataSourceTest, GeneratesExactlyTheConfiguredTuples) {
  Fixture fx(4000, 1000);
  fx.start_build(two_owner_map());
  fx.drain_generation();
  std::uint64_t tuples = 0;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    tuples += sent.msg.as<ChunkPayload>().chunk.size();
  }
  EXPECT_EQ(tuples, 4000u);
}

TEST(DataSourceTest, RoutesByPositionToActiveOwner) {
  Fixture fx(4000, 1000);
  fx.start_build(two_owner_map());
  fx.drain_generation();
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    const auto& chunk = sent.msg.as<ChunkPayload>().chunk;
    for (const Tuple& t : chunk.batch) {
      const bool lower = position_of(t.key) < kPositionCount / 2;
      EXPECT_EQ(sent.to, lower ? 10 : 11);
    }
  }
}

TEST(DataSourceTest, FullChunksPlusFinalPartials) {
  Fixture fx(4500, 1000);
  fx.start_build(two_owner_map());
  fx.drain_generation();
  const auto chunks = fx.rt->sent_with_tag(Tag::kDataChunk);
  // 4500 uniform tuples over 2 owners: 4 full chunks + 2 partial flushes.
  std::uint64_t full = 0, partial = 0;
  for (const auto& sent : chunks) {
    const std::size_t n = sent.msg.as<ChunkPayload>().chunk.size();
    (n == 1000 ? full : partial) += 1;
    EXPECT_LE(n, 1000u);
  }
  EXPECT_GE(full, 3u);
  EXPECT_LE(partial, 2u);
}

TEST(DataSourceTest, ReportsSourceDoneWithTotals) {
  Fixture fx(4000, 1000);
  fx.start_build(two_owner_map());
  fx.drain_generation();
  const auto done = fx.rt->sent_with_tag(Tag::kSourceDone);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].to, kScheduler);
  const auto& payload = done[0].msg.as<SourceDonePayload>();
  EXPECT_EQ(payload.rel, RelTag::kR);
  EXPECT_EQ(payload.tuples_sent, 4000u);
  EXPECT_EQ(payload.chunks_sent, fx.rt->sent_with_tag(Tag::kDataChunk).size());
}

TEST(DataSourceTest, MapUpdateRedirectsSubsequentTuples) {
  Fixture fx(8000, 1000);
  auto map = two_owner_map();
  fx.start_build(map);
  // Process exactly the one queued generation slice, then update the map
  // so the lower half now belongs to actor 99.
  {
    auto& outbox = fx.rt->outbox();
    auto it = outbox.begin();
    while (it != outbox.end() &&
           it->msg.tag != static_cast<int>(Tag::kGenSlice)) {
      ++it;
    }
    ASSERT_NE(it, outbox.end());
    Message slice = std::move(it->msg);
    outbox.erase(it);
    fx.rt->deliver(fx.source, std::move(slice));
  }
  MapUpdatePayload update;
  update.version = 1;
  map.add_replica(0, 99);
  update.map = map;
  fx.rt->deliver(fx.source, make_message(Tag::kMapUpdate, update, 100));
  fx.drain_generation();
  // Some lower-half chunks must now target 99.
  bool saw_new_owner = false;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    if (sent.to == 99) saw_new_owner = true;
  }
  EXPECT_TRUE(saw_new_owner);
}

TEST(DataSourceTest, StaleMapVersionIgnored) {
  Fixture fx(4000, 1000);
  auto map = two_owner_map();
  fx.start_build(map);
  MapUpdatePayload newer;
  newer.version = 5;
  auto map2 = map;
  map2.add_replica(0, 99);
  newer.map = map2;
  fx.rt->deliver(fx.source, make_message(Tag::kMapUpdate, newer, 100));
  MapUpdatePayload stale;
  stale.version = 2;  // older than 5: must not override
  stale.map = map;
  fx.rt->deliver(fx.source, make_message(Tag::kMapUpdate, stale, 100));
  fx.drain_generation();
  bool lower_to_99 = false;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    if (sent.to == 99) lower_to_99 = true;
    EXPECT_NE(sent.to, 10);  // old active owner replaced by version 5
  }
  EXPECT_TRUE(lower_to_99);
}

TEST(DataSourceTest, ProbeBroadcastsToAllReplicas) {
  Fixture fx(2000, 500);
  auto map = two_owner_map();
  map.add_replica(0, 99);  // lower half: replicas {99, 10}
  StartProbePayload payload;
  payload.map = map;
  fx.rt->deliver(fx.source, make_message(Tag::kStartProbe, payload, 100));
  fx.drain_generation();
  std::uint64_t to_99 = 0, to_10 = 0, to_11 = 0;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    const auto& chunk = sent.msg.as<ChunkPayload>().chunk;
    EXPECT_EQ(chunk.rel, RelTag::kS);
    if (sent.to == 99) to_99 += chunk.size();
    if (sent.to == 10) to_10 += chunk.size();
    if (sent.to == 11) to_11 += chunk.size();
  }
  // Every lower-half probe tuple goes to BOTH replicas.
  EXPECT_EQ(to_99, to_10);
  EXPECT_GT(to_99, 0u);
  EXPECT_EQ(to_99 + to_11, 2000u);
}

TEST(DataSourceTest, ProbeSingleOwnerNoDuplication) {
  Fixture fx(2000, 500);
  StartProbePayload payload;
  payload.map = two_owner_map();
  fx.rt->deliver(fx.source, make_message(Tag::kStartProbe, payload, 100));
  fx.drain_generation();
  std::uint64_t total = 0;
  for (const auto& sent : fx.rt->sent_with_tag(Tag::kDataChunk)) {
    total += sent.msg.as<ChunkPayload>().chunk.size();
  }
  EXPECT_EQ(total, 2000u);
}

TEST(DataSourceTest, ChargesGenerationCpu) {
  Fixture fx(4000, 1000);
  fx.start_build(two_owner_map());
  fx.drain_generation();
  // At least tuple_generate_sec per tuple must have been charged.
  EXPECT_GE(fx.rt->charged(), 4000 * fx.config->cost.tuple_generate_sec);
}

}  // namespace
}  // namespace ehja
