// Unit tests for the disk model and spill files: bandwidth math, seek
// charging on stream switches, buffered append behaviour.
#include <gtest/gtest.h>

#include "storage/sim_disk.hpp"
#include "storage/spill_file.hpp"

namespace ehja {
namespace {

DiskConfig test_disk() {
  DiskConfig disk;
  disk.write_bytes_per_sec = 1e6;
  disk.read_bytes_per_sec = 2e6;
  disk.seek_sec = 0.01;
  disk.io_buffer_bytes = 1000;
  return disk;
}

TEST(SimDiskTest, SequentialWriteNoExtraSeeks) {
  SimDisk disk(test_disk());
  const double first = disk.write_cost(1, 1000);
  const double second = disk.write_cost(1, 1000);
  EXPECT_DOUBLE_EQ(first, 0.01 + 0.001);  // initial seek + transfer
  EXPECT_DOUBLE_EQ(second, 0.001);        // same stream: no seek
}

TEST(SimDiskTest, StreamSwitchChargesSeek) {
  SimDisk disk(test_disk());
  disk.write_cost(1, 1000);
  const double other = disk.write_cost(2, 1000);
  EXPECT_DOUBLE_EQ(other, 0.01 + 0.001);
  EXPECT_EQ(disk.seeks(), 2u);
}

TEST(SimDiskTest, ReadUsesReadBandwidth) {
  SimDisk disk(test_disk());
  const double cost = disk.read_cost(7, 2000);
  EXPECT_DOUBLE_EQ(cost, 0.01 + 0.001);
}

TEST(SimDiskTest, ByteCountersAccumulate) {
  SimDisk disk(test_disk());
  disk.write_cost(1, 500);
  disk.write_cost(1, 700);
  disk.read_cost(1, 300);
  EXPECT_EQ(disk.bytes_written(), 1200u);
  EXPECT_EQ(disk.bytes_read(), 300u);
}

TEST(SpillFileTest, BufferedAppendDefersCost) {
  SimDisk disk(test_disk());
  SpillFile file(disk, 1);
  // 400 bytes stays inside the 1000-byte buffer: no time yet.
  EXPECT_DOUBLE_EQ(file.append(400), 0.0);
  EXPECT_EQ(file.bytes(), 400u);
  // Crossing the buffer boundary flushes one buffer's worth.
  const double cost = file.append(700);
  EXPECT_GT(cost, 0.0);
}

TEST(SpillFileTest, FlushDrainsResidual) {
  SimDisk disk(test_disk());
  SpillFile file(disk, 1);
  file.append(250);
  const double cost = file.flush();
  EXPECT_GT(cost, 0.0);
  EXPECT_DOUBLE_EQ(file.flush(), 0.0);  // idempotent when empty
}

TEST(SpillFileTest, ScanAllReadsEverything) {
  SimDisk disk(test_disk());
  SpillFile file(disk, 3);
  file.append(5000);
  file.note_records(50);
  const double cost = file.scan_all();
  EXPECT_GE(cost, 5000 / 2e6);  // at least the read transfer time
  EXPECT_EQ(file.records(), 50u);
  EXPECT_EQ(disk.bytes_read(), 5000u);
}

TEST(SpillFileTest, InterleavedStreamsPaySeeks) {
  SimDisk disk(test_disk());
  SpillFile a(disk, 1), b(disk, 2);
  double total = 0.0;
  for (int i = 0; i < 5; ++i) {
    total += a.append(1000);
    total += b.append(1000);
  }
  // 10 buffer flushes alternating streams: 10 seeks.
  EXPECT_EQ(disk.seeks(), 10u);
  EXPECT_GT(total, 10 * 0.01);
}

}  // namespace
}  // namespace ehja
