// Unit tests for the expansion-policy layer against a fake environment.
//
// These drive every pool-exhaustion and resolution-exhaustion edge through
// the ExpansionEnv seam without standing up a run: the fake records spawns,
// sends and map broadcasts, and the tests assert on the exact protocol
// traffic each policy emits.  The DrainProtocol state machine is covered at
// the bottom of the file.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/drain.hpp"
#include "core/expansion_policy.hpp"
#include "relation/tuple.hpp"

namespace ehja {
namespace {

struct FakeEnv final : public ExpansionEnv {
  PartitionMap map_;
  RunMetrics metrics_;
  struct Sent {
    ActorId to;
    Message msg;
  };
  std::vector<Sent> sent;
  std::vector<NodeId> spawned_nodes;
  ActorId next_actor = 100;
  int broadcasts = 0;
  bool allow_expansion = true;
  std::uint64_t observed = 0;
  SimTime now_ = 0.0;
  std::vector<std::pair<TraceKind, std::pair<std::int64_t, std::int64_t>>>
      traces;

  PartitionMap& map() override { return map_; }
  RunMetrics& metrics() override { return metrics_; }
  ActorId spawn_join(NodeId node) override {
    spawned_nodes.push_back(node);
    return next_actor++;
  }
  void send_to(ActorId to, Message msg) override {
    sent.push_back({to, std::move(msg)});
  }
  void broadcast_map() override { ++broadcasts; }
  bool expansion_starting() override { return allow_expansion; }
  std::uint64_t observed_build_tuples() const override { return observed; }
  SimTime now() const override { return now_; }
  void trace(TraceKind kind, std::int64_t a, std::int64_t b) override {
    traces.push_back({kind, {a, b}});
  }
  std::vector<ActorId> join_list{1, 2, 3, 4};
  std::vector<ActorId> source_list;
  const std::vector<ActorId>& join_actors() const override {
    return join_list;
  }
  const std::vector<ActorId>& source_actors() const override {
    return source_list;
  }
  bool node_alive(NodeId /*node*/) const override { return true; }

  std::vector<Sent> with_tag(Tag tag) const {
    std::vector<Sent> out;
    for (const auto& s : sent) {
      if (s.msg.tag == static_cast<int>(tag)) out.push_back(s);
    }
    return out;
  }
};

class PolicyTest : public ::testing::Test {
 protected:
  ResourcePool make_pool(std::size_t nodes) {
    std::vector<NodeId> potential;
    for (std::size_t i = 0; i < nodes; ++i) {
      potential.push_back(static_cast<NodeId>(10 + i));
    }
    return ResourcePool(spec, std::move(potential), config->pick_policy);
  }

  std::unique_ptr<ExpansionPolicy> make_policy(
      Algorithm algorithm, std::size_t pool_nodes,
      std::uint64_t positions = kPositionCount) {
    config->algorithm = algorithm;
    env.map_ = PartitionMap::initial(joins, positions);
    return ExpansionPolicy::make(config, env, make_pool(pool_nodes));
  }

  void memory_full(ExpansionPolicy& policy, ActorId from,
                   std::uint64_t footprint = 0) {
    MemoryFullPayload payload;
    payload.footprint_bytes = footprint;
    payload.budget_bytes = config->node_hash_memory_bytes;
    policy.on_memory_full(from, payload);
  }

  void op_complete(ExpansionPolicy& policy, std::uint64_t op_id) {
    OpCompletePayload done;
    done.op_id = op_id;
    policy.on_op_complete(done);
  }

  std::shared_ptr<EhjaConfig> config = std::make_shared<EhjaConfig>();
  ClusterSpec spec = make_uniform_cluster(64);
  FakeEnv env;
  std::vector<ActorId> joins{1, 2, 3, 4};
};

// ------------------------------------------------------ protocol round-trip

TEST_F(PolicyTest, SplitServicesOverflowThroughProtocol) {
  auto policy = make_policy(Algorithm::kSplit, 8);
  memory_full(*policy, 1);

  // One node recruited, one split op in flight.
  ASSERT_EQ(env.spawned_nodes.size(), 1u);
  EXPECT_FALSE(policy->idle());
  EXPECT_EQ(env.metrics_.expansions, 1u);
  EXPECT_EQ(env.broadcasts, 1);

  // The fresh node gets its half-range init; the requester ships it.
  const auto inits = env.with_tag(Tag::kJoinInit);
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0].to, 100);
  const auto& init = inits[0].msg.as<JoinInitPayload>();
  EXPECT_EQ(init.role, JoinRole::kSplitChild);
  const PosRange upper{kPositionCount / 8, kPositionCount / 4};
  EXPECT_EQ(init.range, upper);

  const auto reqs = env.with_tag(Tag::kSplitRequest);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].to, 1);
  const auto& req = reqs[0].msg.as<SplitRequestPayload>();
  EXPECT_EQ(req.moved, upper);
  EXPECT_EQ(req.target, 100);

  // The map now carries the fifth, single-owner entry.
  EXPECT_EQ(env.map_.size(), 5u);
  EXPECT_EQ(env.map_.entry_for(upper.lo).active_owner(), 100);

  // Op completion relieves the requester and returns the policy to idle.
  op_complete(*policy, req.op_id);
  const auto reliefs = env.with_tag(Tag::kRelief);
  ASSERT_EQ(reliefs.size(), 1u);
  EXPECT_EQ(reliefs[0].to, 1);
  EXPECT_TRUE(policy->idle());
}

TEST_F(PolicyTest, OverflowsSerializeBehindTheInflightOp) {
  auto policy = make_policy(Algorithm::kReplicate, 8);
  memory_full(*policy, 1);
  ASSERT_EQ(env.spawned_nodes.size(), 1u);

  // A second (and duplicate) overflow queues; no new op starts.
  memory_full(*policy, 2);
  memory_full(*policy, 2);
  EXPECT_EQ(env.spawned_nodes.size(), 1u);
  EXPECT_FALSE(policy->idle());

  // Completing op 1 launches exactly one op for the deduplicated requester.
  const auto first = env.with_tag(Tag::kHandoffStart);
  ASSERT_EQ(first.size(), 1u);
  op_complete(*policy, first[0].msg.as<HandoffStartPayload>().op_id);
  EXPECT_EQ(env.spawned_nodes.size(), 2u);
  const auto handoffs = env.with_tag(Tag::kHandoffStart);
  ASSERT_EQ(handoffs.size(), 2u);
  EXPECT_EQ(handoffs[1].to, 2);

  op_complete(*policy, handoffs[1].msg.as<HandoffStartPayload>().op_id);
  EXPECT_TRUE(policy->idle());
  EXPECT_EQ(env.metrics_.expansions, 2u);
}

TEST_F(PolicyTest, ExpansionDeniedOutsideBuildStaysQueued) {
  auto policy = make_policy(Algorithm::kReplicate, 8);
  env.allow_expansion = false;
  memory_full(*policy, 1);
  // Nothing starts, but the request is not lost.
  EXPECT_TRUE(env.spawned_nodes.empty());
  EXPECT_FALSE(policy->idle());
}

// ------------------------------------------------------ pool exhaustion

TEST_F(PolicyTest, PoolExhaustionMidQueueFlushesEveryoneToSpill) {
  // One pool node: the first overflow consumes it; two more queue behind
  // the in-flight op.  When the op completes and the next acquire fails,
  // the whole queue must degrade to spilling, not just its head.
  auto policy = make_policy(Algorithm::kReplicate, 1);
  memory_full(*policy, 1);
  memory_full(*policy, 2);
  memory_full(*policy, 3);
  ASSERT_EQ(env.spawned_nodes.size(), 1u);

  const auto handoffs = env.with_tag(Tag::kHandoffStart);
  ASSERT_EQ(handoffs.size(), 1u);
  op_complete(*policy, handoffs[0].msg.as<HandoffStartPayload>().op_id);

  const auto spills = env.with_tag(Tag::kSwitchToSpill);
  ASSERT_EQ(spills.size(), 2u);
  EXPECT_EQ(spills[0].to, 2);
  EXPECT_EQ(spills[1].to, 3);
  EXPECT_EQ(policy->spilled(), (std::vector<ActorId>{2, 3}));
  EXPECT_TRUE(policy->pool_exhausted());
  EXPECT_TRUE(env.metrics_.pool_exhausted);
  EXPECT_TRUE(policy->idle());
  EXPECT_EQ(env.metrics_.expansions, 1u);

  // Later overflows short-circuit straight to spilling.
  memory_full(*policy, 4);
  EXPECT_EQ(env.with_tag(Tag::kSwitchToSpill).size(), 3u);
  EXPECT_EQ(policy->spilled(), (std::vector<ActorId>{2, 3, 4}));
  EXPECT_TRUE(policy->idle());
}

// ------------------------------------------------ resolution exhaustion

TEST_F(PolicyTest, LinearPointerResolutionExhaustionDegradesToSpill) {
  // Four single-position buckets: LinearHashMap::split_possible() is false
  // from the start, so the first overflow degrades to spilling even though
  // the pool still has nodes.
  config->algorithm = Algorithm::kSplit;
  config->split_variant = SplitVariant::kLinearPointer;
  env.map_ = PartitionMap::initial(joins, /*positions=*/4);
  SplitPolicy policy(config, env, make_pool(8), /*positions=*/4);

  memory_full(policy, 1);
  EXPECT_TRUE(env.spawned_nodes.empty());
  EXPECT_EQ(env.metrics_.expansions, 0u);
  EXPECT_EQ(policy.spilled(), (std::vector<ActorId>{1}));
  EXPECT_TRUE(policy.pool_exhausted());
  EXPECT_TRUE(policy.idle());

  memory_full(policy, 2);
  EXPECT_EQ(policy.spilled(), (std::vector<ActorId>{1, 2}));
}

TEST_F(PolicyTest, RequesterMidpointWidthExhaustionDegradesToSpill) {
  // A single-position range cannot be halved: the requester-midpoint
  // variant must degrade the requester instead of splitting.
  auto policy = make_policy(Algorithm::kSplit, 8, /*positions=*/4);
  memory_full(*policy, 2);
  EXPECT_TRUE(env.spawned_nodes.empty());
  EXPECT_EQ(env.metrics_.expansions, 0u);
  EXPECT_EQ(policy->spilled(), (std::vector<ActorId>{2}));
  EXPECT_TRUE(policy->pool_exhausted());
}

TEST_F(PolicyTest, StaleRequesterIsDroppedWithoutSideEffects) {
  auto policy = make_policy(Algorithm::kReplicate, 8);
  memory_full(*policy, 99);  // not an active owner of any range
  EXPECT_TRUE(env.spawned_nodes.empty());
  EXPECT_TRUE(env.with_tag(Tag::kSwitchToSpill).empty());
  EXPECT_TRUE(policy->spilled().empty());
  EXPECT_TRUE(policy->idle());
  EXPECT_EQ(env.metrics_.expansions, 0u);
}

// ------------------------------------------------------------ out-of-core

using OutOfCorePolicyDeathTest = PolicyTest;

TEST_F(OutOfCorePolicyDeathTest, MemoryFullIsAProtocolViolation) {
  auto policy = make_policy(Algorithm::kOutOfCore, 8);
  EXPECT_DEATH(memory_full(*policy, 1), "spill, not expand");
}

// --------------------------------------------------------------- adaptive

TEST_F(PolicyTest, AdaptiveSplitsWhenProbeBroadcastDominates) {
  // Default 10M-tuple probe: broadcasting the range's probe share forever
  // dwarfs migrating half the held build tuples once.
  auto policy = make_policy(Algorithm::kAdaptive, 8);
  memory_full(*policy, 1, config->node_hash_memory_bytes);

  EXPECT_EQ(env.with_tag(Tag::kSplitRequest).size(), 1u);
  EXPECT_TRUE(env.with_tag(Tag::kHandoffStart).empty());
  EXPECT_EQ(env.metrics_.adaptive_splits, 1u);
  EXPECT_EQ(env.metrics_.adaptive_replicas, 0u);
  // The choice is traced (a = requester, b = 1 for split).
  bool traced = false;
  for (const auto& [kind, ab] : env.traces) {
    if (kind == TraceKind::kAdaptiveChoice) {
      traced = true;
      EXPECT_EQ(ab.first, 1);
      EXPECT_EQ(ab.second, 1);
    }
  }
  EXPECT_TRUE(traced);
}

TEST_F(PolicyTest, AdaptiveReplicatesWhenProbeIsSmall) {
  // A 1000-tuple probe makes the recurring broadcast trivially cheaper
  // than migrating ~340k build tuples.
  config->probe_rel.tuple_count = 1'000;
  auto policy = make_policy(Algorithm::kAdaptive, 8);
  memory_full(*policy, 1, config->node_hash_memory_bytes);

  EXPECT_TRUE(env.with_tag(Tag::kSplitRequest).empty());
  EXPECT_EQ(env.with_tag(Tag::kHandoffStart).size(), 1u);
  EXPECT_EQ(env.metrics_.adaptive_splits, 0u);
  EXPECT_EQ(env.metrics_.adaptive_replicas, 1u);
}

TEST_F(PolicyTest, AdaptiveReplicatedRangeKeepsReplicating) {
  // Entry 0 already carries a replica: its frozen members hold tuples of
  // the full range, so the map cannot subdivide it -- the policy must
  // replicate again even though the probe side favours splitting.
  auto policy = make_policy(Algorithm::kAdaptive, 8);
  env.map_.add_replica(0, 50);
  memory_full(*policy, 50, config->node_hash_memory_bytes);

  EXPECT_TRUE(env.with_tag(Tag::kSplitRequest).empty());
  const auto handoffs = env.with_tag(Tag::kHandoffStart);
  ASSERT_EQ(handoffs.size(), 1u);
  EXPECT_EQ(handoffs[0].to, 50);
  EXPECT_EQ(env.metrics_.adaptive_replicas, 1u);
}

TEST_F(PolicyTest, AdaptiveObservedBuildShareFlipsTheDecision) {
  // The same overflow flips from split to replicate as the observed build
  // volume grows: a range holding a tiny share of the build attracts a
  // tiny share of the probe, so the broadcast becomes the cheap option.
  const std::uint64_t footprint = 1 * kMiB;
  const auto run_once = [&](std::uint64_t observed) {
    config = std::make_shared<EhjaConfig>();
    config->algorithm = Algorithm::kAdaptive;
    config->probe_rel.tuple_count = 100'000;
    env = FakeEnv{};
    env.map_ = PartitionMap::initial(joins);
    env.observed = observed;
    auto policy = ExpansionPolicy::make(config, env, make_pool(8));
    memory_full(*policy, 1, footprint);
    return !env.with_tag(Tag::kSplitRequest).empty();
  };

  const std::uint64_t held =
      footprint / tuple_footprint(EhjaConfig{}.build_rel.schema);
  EXPECT_TRUE(run_once(held));          // share 1.0: broadcast everything
  EXPECT_FALSE(run_once(held * 1000));  // share 0.001: broadcast almost none
}

// --------------------------------------------------------- drain protocol

using Outcome = DrainProtocol::Outcome;

DrainAckPayload ack(std::uint64_t epoch, std::uint64_t received,
                    std::uint64_t forwarded = 0) {
  DrainAckPayload a;
  a.epoch = epoch;
  a.data_chunks_received = received;
  a.data_chunks_forwarded = forwarded;
  return a;
}

TEST(DrainProtocolTest, NeedsTwoConsecutiveBalancedRounds) {
  DrainProtocol drain;
  drain.arm();

  const auto p1 = drain.begin_round();
  EXPECT_TRUE(drain.in_round());
  EXPECT_EQ(drain.on_ack(1, ack(p1.epoch, 6), 2, 10), Outcome::kPending);
  // Balanced (6 + 4 == 10) but no previous round to compare against.
  EXPECT_EQ(drain.on_ack(2, ack(p1.epoch, 4), 2, 10), Outcome::kRepoll);

  const auto p2 = drain.begin_round();
  EXPECT_GT(p2.epoch, p1.epoch);
  EXPECT_EQ(drain.on_ack(1, ack(p2.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p2.epoch, 4), 2, 10), Outcome::kDrained);
  EXPECT_FALSE(drain.in_round());
}

TEST(DrainProtocolTest, UnbalancedRoundsKeepRepolling) {
  DrainProtocol drain;
  drain.arm();

  // 9 of 10 chunks accounted for: in flight somewhere.
  auto p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 5), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);

  // Balanced now, but the totals moved since the last round.
  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);

  // Stable and balanced: drained.
  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kDrained);
}

TEST(DrainProtocolTest, ForwardedChunksBalanceTheEquation) {
  DrainProtocol drain;
  drain.arm();
  // Sources sent 10; nodes re-forwarded 4 among themselves, so receivers
  // legitimately count 14.
  for (int round = 0; round < 2; ++round) {
    const auto p = drain.begin_round();
    EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 8, 2), 2, 10), Outcome::kPending);
    const auto outcome = drain.on_ack(2, ack(p.epoch, 6, 2), 2, 10);
    EXPECT_EQ(outcome, round == 0 ? Outcome::kRepoll : Outcome::kDrained);
  }
}

TEST(DrainProtocolTest, StaleEpochAcksAreIgnored) {
  DrainProtocol drain;
  drain.arm();
  const auto p1 = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p1.epoch, 10), 2, 10), Outcome::kPending);
  const auto p2 = drain.begin_round();  // repoll before the round finished

  // The straggler ack of round 1 must not pollute round 2.
  EXPECT_EQ(drain.on_ack(2, ack(p1.epoch, 7), 2, 10), Outcome::kStale);
  EXPECT_EQ(drain.on_ack(1, ack(p2.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p2.epoch, 4), 2, 10), Outcome::kRepoll);
}

TEST(DrainProtocolTest, DuplicateAcksFromOneSenderCountOnce) {
  // A jittery network can deliver the same ack twice (drop-with-redelivery
  // models retransmission).  The second copy must neither complete the
  // round nor double-count the sender's chunks.
  DrainProtocol drain;
  drain.arm();
  const auto p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kStale);
  EXPECT_TRUE(drain.in_round());
  // The genuine second sender still completes the round, and the balance
  // is computed from one copy of each ack (6 + 4 == 10, not 12 + 4).
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);
}

TEST(DrainProtocolTest, LateAckAfterRoundCompletionIsStale) {
  DrainProtocol drain;
  drain.arm();
  auto p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);
  // A third (duplicate) ack arriving after the round closed must not be
  // counted into the next round's totals.
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kStale);

  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kDrained);
}

TEST(DrainProtocolTest, AbortInvalidatesTheRoundAndTheHistory) {
  DrainProtocol drain;
  drain.arm();

  // A balanced round establishes history...
  auto p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);

  // ...an expansion aborts the next round mid-flight...
  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  drain.abort();
  EXPECT_FALSE(drain.in_round());
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kStale);

  // ...and the restarted drain must prove stability afresh: one balanced
  // round is not enough.
  drain.arm();
  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kRepoll);
  p = drain.begin_round();
  EXPECT_EQ(drain.on_ack(1, ack(p.epoch, 6), 2, 10), Outcome::kPending);
  EXPECT_EQ(drain.on_ack(2, ack(p.epoch, 4), 2, 10), Outcome::kDrained);
}

}  // namespace
}  // namespace ehja
